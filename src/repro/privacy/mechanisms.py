"""Noise mechanisms for epsilon-differential privacy.

Only pure-epsilon mechanisms are needed by the paper: the Laplace mechanism
(Lemma 1) for real-valued statistics and, as a convenience for integer-valued
counters, the two-sided geometric mechanism which is the discrete analogue of
Laplace noise.  Both are exposed as small classes carrying their sensitivity
and epsilon so that callers (and tests) can audit the noise scale in one
place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "laplace_noise",
    "geometric_noise",
    "LaplaceMechanism",
    "GeometricMechanism",
]


def _as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalise ``rng`` inputs to a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def laplace_noise(
    scale: float,
    size: int | tuple[int, ...] | None = None,
    rng: np.random.Generator | int | None = None,
) -> float | np.ndarray:
    """Sample zero-mean Laplace noise with the given scale.

    ``scale`` is the Laplace ``b`` parameter, i.e. ``sensitivity / epsilon``
    in the Laplace mechanism.  A non-positive scale is rejected because it
    would silently produce a non-private mechanism.
    """
    if scale <= 0:
        raise ValueError(f"Laplace scale must be positive, got {scale}")
    generator = _as_generator(rng)
    sample = generator.laplace(loc=0.0, scale=scale, size=size)
    if size is None:
        return float(sample)
    return sample


def geometric_noise(
    epsilon: float,
    sensitivity: float = 1.0,
    size: int | tuple[int, ...] | None = None,
    rng: np.random.Generator | int | None = None,
) -> int | np.ndarray:
    """Sample two-sided geometric noise calibrated to ``sensitivity/epsilon``.

    The two-sided geometric distribution with parameter
    ``alpha = exp(-epsilon / sensitivity)`` is the discrete counterpart of the
    Laplace mechanism and provides the same epsilon-DP guarantee for
    integer-valued queries.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise ValueError(f"sensitivity must be positive, got {sensitivity}")
    generator = _as_generator(rng)
    alpha = np.exp(-epsilon / sensitivity)
    # Difference of two geometric variables is two-sided geometric.
    shape = size if size is not None else 1
    left = generator.geometric(1.0 - alpha, size=shape) - 1
    right = generator.geometric(1.0 - alpha, size=shape) - 1
    noise = left - right
    if size is None:
        return int(noise[0])
    return noise


@dataclass(frozen=True)
class LaplaceMechanism:
    """The Laplace mechanism of Lemma 1.

    Attributes
    ----------
    epsilon:
        Privacy budget spent by one invocation on a fixed statistic.
    sensitivity:
        L1 sensitivity of the statistic being released.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.sensitivity <= 0:
            raise ValueError(
                f"sensitivity must be positive, got {self.sensitivity}"
            )

    @property
    def scale(self) -> float:
        """Laplace scale parameter ``sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    def add_noise(
        self,
        value: float | np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> float | np.ndarray:
        """Release ``value + Laplace(scale)`` (element-wise for arrays)."""
        array = np.asarray(value, dtype=float)
        noise = laplace_noise(self.scale, size=array.shape or None, rng=rng)
        noisy = array + noise
        if array.shape == ():
            return float(noisy)
        return noisy

    def noise(
        self,
        size: int | tuple[int, ...] | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> float | np.ndarray:
        """Draw calibrated noise without applying it to a value."""
        return laplace_noise(self.scale, size=size, rng=rng)

    def expected_absolute_error(self) -> float:
        """E|Laplace(b)| = b; used by the theory module and tests."""
        return self.scale

    def variance(self) -> float:
        """Var[Laplace(b)] = 2 b^2."""
        return 2.0 * self.scale**2


@dataclass(frozen=True)
class GeometricMechanism:
    """Two-sided geometric mechanism for integer-valued statistics."""

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {self.epsilon}")
        if self.sensitivity <= 0:
            raise ValueError(
                f"sensitivity must be positive, got {self.sensitivity}"
            )

    def add_noise(
        self,
        value: int | np.ndarray,
        rng: np.random.Generator | int | None = None,
    ) -> int | np.ndarray:
        """Release ``value + TwoSidedGeometric(epsilon/sensitivity)``."""
        array = np.asarray(value)
        noise = geometric_noise(
            self.epsilon,
            self.sensitivity,
            size=array.shape or None,
            rng=rng,
        )
        noisy = array + noise
        if array.shape == ():
            return int(noisy)
        return noisy

    def expected_absolute_error(self) -> float:
        """Expected absolute value of the two-sided geometric noise."""
        alpha = np.exp(-self.epsilon / self.sensitivity)
        return float(2.0 * alpha / (1.0 - alpha**2))
