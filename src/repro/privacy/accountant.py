"""Privacy budget accounting via basic composition (Lemma 3).

PrivHP spends its total budget ``epsilon = sum_l sigma_l`` across the levels
of the hierarchy: a Laplace counter per node on the exact levels and a private
sketch per approximate level.  The accountant tracks each spend, enforces that
the total never exceeds the configured budget, and produces an auditable
ledger that the tests and the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PrivacySpend", "BudgetAccountant", "BudgetExceededError"]


class BudgetExceededError(RuntimeError):
    """Raised when a spend would push the ledger past the total budget."""


@dataclass(frozen=True)
class PrivacySpend:
    """A single entry in the privacy ledger."""

    epsilon: float
    label: str

    def __post_init__(self) -> None:
        if self.epsilon < 0:
            raise ValueError(f"epsilon spent must be non-negative, got {self.epsilon}")


@dataclass
class BudgetAccountant:
    """Tracks cumulative epsilon under basic (sequential) composition.

    Parameters
    ----------
    total_budget:
        The overall epsilon the mechanism is allowed to spend.  ``None`` means
        unlimited (useful for non-private ablations).
    tolerance:
        Numerical slack applied when checking the budget, so that an optimal
        allocation that sums to epsilon up to floating-point error is not
        rejected.
    """

    total_budget: float | None = None
    tolerance: float = 1e-9
    _spends: list[PrivacySpend] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_budget is not None and self.total_budget <= 0:
            raise ValueError(
                f"total_budget must be positive or None, got {self.total_budget}"
            )

    @property
    def spent(self) -> float:
        """Total epsilon spent so far."""
        return float(sum(entry.epsilon for entry in self._spends))

    @property
    def remaining(self) -> float:
        """Remaining budget; ``inf`` when the accountant is unbounded."""
        if self.total_budget is None:
            return float("inf")
        return self.total_budget - self.spent

    @property
    def ledger(self) -> tuple[PrivacySpend, ...]:
        """Immutable view of all recorded spends."""
        return tuple(self._spends)

    def spend(self, epsilon: float, label: str = "") -> PrivacySpend:
        """Record a spend, raising :class:`BudgetExceededError` if over budget."""
        entry = PrivacySpend(epsilon=epsilon, label=label)
        if (
            self.total_budget is not None
            and self.spent + epsilon > self.total_budget + self.tolerance
        ):
            raise BudgetExceededError(
                f"spending {epsilon} for {label!r} exceeds remaining budget "
                f"{self.remaining:.6g} (total {self.total_budget})"
            )
        self._spends.append(entry)
        return entry

    def can_spend(self, epsilon: float) -> bool:
        """Return True when a spend of ``epsilon`` would stay within budget."""
        if self.total_budget is None:
            return True
        return self.spent + epsilon <= self.total_budget + self.tolerance

    def assert_within_budget(self) -> None:
        """Raise if the ledger exceeds the configured budget."""
        if self.total_budget is None:
            return
        if self.spent > self.total_budget + self.tolerance:
            raise BudgetExceededError(
                f"ledger total {self.spent:.6g} exceeds budget {self.total_budget}"
            )

    def summary(self) -> str:
        """Human-readable multi-line ledger summary."""
        lines = ["privacy ledger:"]
        for entry in self._spends:
            lines.append(f"  {entry.label or '<unlabelled>'}: epsilon={entry.epsilon:.6g}")
        total = f"{self.total_budget:.6g}" if self.total_budget is not None else "unbounded"
        lines.append(f"  spent={self.spent:.6g} / budget={total}")
        return "\n".join(lines)
