"""Differential privacy substrate used by PrivHP and the baselines.

The package exposes:

* :mod:`repro.privacy.definitions` -- neighbouring relations and sensitivity
  helpers used to reason about the privacy of linear statistics.
* :mod:`repro.privacy.mechanisms` -- the Laplace and geometric mechanisms and
  vector-valued noise helpers.
* :mod:`repro.privacy.accountant` -- a simple basic-composition budget
  accountant used to track the per-level budgets ``{sigma_l}`` spent by the
  hierarchical decomposition.
"""

from repro.privacy.definitions import (
    l1_sensitivity,
    linf_sensitivity,
    neighbouring,
)
from repro.privacy.mechanisms import (
    GeometricMechanism,
    LaplaceMechanism,
    laplace_noise,
)
from repro.privacy.accountant import BudgetAccountant, PrivacySpend

__all__ = [
    "BudgetAccountant",
    "GeometricMechanism",
    "LaplaceMechanism",
    "PrivacySpend",
    "l1_sensitivity",
    "laplace_noise",
    "linf_sensitivity",
    "neighbouring",
]
