"""Stream substrate: one-pass iteration, workload generators and datasets.

PrivHP is a data-stream algorithm, so the experiments need (a) a stream
abstraction that enforces single-pass access and measures throughput, and
(b) workloads whose skew -- the quantity ``||tail_k||_1`` that drives the
paper's approximation term -- is controllable.  Real sensitive traces are not
available offline, so :mod:`repro.stream.datasets` synthesises realistic
stand-ins (IPv4 traffic with heavy-hitter structure, clustered geo check-ins,
heavy-tailed transaction amounts); DESIGN.md records the substitution.
"""

from repro.stream.stream import DataStream, StreamStats
from repro.stream.generators import (
    available_generators,
    beta_stream,
    gaussian_mixture_stream,
    make_stream,
    sparse_cluster_stream,
    uniform_stream,
    zipf_cell_stream,
)
from repro.stream.datasets import (
    geo_checkin_stream,
    ipv4_traffic_stream,
    transaction_amount_stream,
)
from repro.stream.scenarios import (
    Scenario,
    ScenarioSpecError,
    load_scenario,
    multi_tenant_records,
    scenario_from_dict,
)

__all__ = [
    "DataStream",
    "Scenario",
    "ScenarioSpecError",
    "StreamStats",
    "available_generators",
    "beta_stream",
    "gaussian_mixture_stream",
    "geo_checkin_stream",
    "ipv4_traffic_stream",
    "load_scenario",
    "make_stream",
    "multi_tenant_records",
    "scenario_from_dict",
    "sparse_cluster_stream",
    "transaction_amount_stream",
    "uniform_stream",
    "zipf_cell_stream",
]
