"""Realistic synthetic datasets for the domain-specific examples.

The paper motivates PrivHP with resource-constrained analysis of sensitive
traffic and location streams but evaluates no proprietary trace; we synthesise
stand-ins whose *structure* (heavy-hitter subnets, clustered check-ins,
heavy-tailed amounts) matches what the algorithm is designed to exploit.

* :func:`ipv4_traffic_stream` -- source addresses drawn from a Zipf-weighted
  set of /16 and /24 subnets plus a uniform background, mimicking the
  hierarchical heavy-hitter structure of real flow logs.
* :func:`geo_checkin_stream` -- check-ins concentrated around a handful of
  city centres inside a bounding box, with a diffuse background.
* :func:`transaction_amount_stream` -- log-normal transaction amounts mapped
  onto ``[0, 1]`` by a capped linear transform.
"""

from __future__ import annotations

import numpy as np

from repro.domain.geo import GeoDomain
from repro.domain.ipv4 import ADDRESS_SPACE

__all__ = ["ipv4_traffic_stream", "geo_checkin_stream", "transaction_amount_stream"]


def _generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def ipv4_traffic_stream(
    size: int,
    num_heavy_subnets: int = 12,
    heavy_fraction: float = 0.85,
    zipf_exponent: float = 1.3,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Synthetic source-address trace with heavy-hitter subnets.

    ``heavy_fraction`` of the packets originate from ``num_heavy_subnets``
    randomly chosen /16 prefixes whose popularity follows a Zipf law; the rest
    are uniform background scan traffic over the whole address space.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if not 0.0 <= heavy_fraction <= 1.0:
        raise ValueError(f"heavy_fraction must lie in [0,1], got {heavy_fraction}")
    if num_heavy_subnets < 1:
        raise ValueError(f"num_heavy_subnets must be at least 1, got {num_heavy_subnets}")
    generator = _generator(rng)

    subnet_prefixes = generator.integers(0, 1 << 16, size=num_heavy_subnets, dtype=np.int64)
    ranks = np.arange(1, num_heavy_subnets + 1, dtype=float)
    subnet_probabilities = ranks**-zipf_exponent
    subnet_probabilities /= subnet_probabilities.sum()

    addresses = np.empty(size, dtype=np.int64)
    heavy_mask = generator.random(size) < heavy_fraction
    num_heavy = int(heavy_mask.sum())

    chosen = generator.choice(num_heavy_subnets, size=num_heavy, p=subnet_probabilities)
    host_parts = generator.integers(0, 1 << 16, size=num_heavy, dtype=np.int64)
    addresses[heavy_mask] = (subnet_prefixes[chosen] << 16) | host_parts

    num_background = size - num_heavy
    addresses[~heavy_mask] = generator.integers(0, ADDRESS_SPACE, size=num_background, dtype=np.int64)
    return addresses


def geo_checkin_stream(
    size: int,
    domain: GeoDomain | None = None,
    num_cities: int = 5,
    city_fraction: float = 0.9,
    city_spread: float = 0.15,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Synthetic (lat, lon) check-ins clustered around a few city centres."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if not 0.0 <= city_fraction <= 1.0:
        raise ValueError(f"city_fraction must lie in [0,1], got {city_fraction}")
    if num_cities < 1:
        raise ValueError(f"num_cities must be at least 1, got {num_cities}")
    generator = _generator(rng)
    if domain is None:
        # Roughly the continental United States.
        domain = GeoDomain(lat_min=24.0, lat_max=49.0, lon_min=-125.0, lon_max=-66.0)

    lat_span = domain.lat_max - domain.lat_min
    lon_span = domain.lon_max - domain.lon_min
    centres = np.column_stack(
        [
            domain.lat_min + generator.random(num_cities) * lat_span,
            domain.lon_min + generator.random(num_cities) * lon_span,
        ]
    )
    weights = generator.dirichlet(np.ones(num_cities) * 0.7)

    points = np.empty((size, 2))
    city_mask = generator.random(size) < city_fraction
    num_city = int(city_mask.sum())
    chosen = generator.choice(num_cities, size=num_city, p=weights)
    jitter = generator.normal(0.0, city_spread, size=(num_city, 2))
    points[city_mask] = centres[chosen] + jitter

    num_background = size - num_city
    points[~city_mask, 0] = domain.lat_min + generator.random(num_background) * lat_span
    points[~city_mask, 1] = domain.lon_min + generator.random(num_background) * lon_span

    points[:, 0] = np.clip(points[:, 0], domain.lat_min, domain.lat_max)
    points[:, 1] = np.clip(points[:, 1], domain.lon_min, domain.lon_max)
    return points


def transaction_amount_stream(
    size: int,
    mean_log: float = 3.0,
    sigma_log: float = 1.0,
    cap: float = 1000.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Heavy-tailed transaction amounts normalised to ``[0, 1]`` by a cap."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if cap <= 0:
        raise ValueError(f"cap must be positive, got {cap}")
    generator = _generator(rng)
    amounts = generator.lognormal(mean_log, sigma_log, size=size)
    return np.clip(amounts, 0.0, cap) / cap
