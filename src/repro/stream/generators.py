"""Synthetic workload generators with controllable skew.

The paper's approximation error is governed by ``||tail_k||_1``, the mass
outside the ``k`` most popular subdomains, so the workloads below span the
relevant regimes:

* :func:`uniform_stream` -- maximal tail (worst case for pruning),
* :func:`gaussian_mixture_stream` -- moderate, smooth concentration,
* :func:`zipf_cell_stream` -- tunable power-law skew over hierarchy cells,
* :func:`sparse_cluster_stream` -- near-zero tail (best case for pruning),
* :func:`beta_stream` -- smooth one-dimensional skew.

Every generator takes an explicit ``rng``/seed and returns a numpy array whose
shape matches the target domain (scalars for d=1, ``(n, d)`` otherwise).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_stream",
    "gaussian_mixture_stream",
    "zipf_cell_stream",
    "sparse_cluster_stream",
    "beta_stream",
    "SCENARIO_GENERATOR_NAMES",
    "available_generators",
    "make_stream",
]


def _generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def _shape(points: np.ndarray, dimension: int) -> np.ndarray:
    if dimension == 1:
        return points.reshape(-1)
    return points.reshape(-1, dimension)


def uniform_stream(
    size: int,
    dimension: int = 1,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Uniform points over ``[0,1]^d`` -- the no-skew worst case for pruning."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    generator = _generator(rng)
    return _shape(generator.random((size, dimension)), dimension)


def gaussian_mixture_stream(
    size: int,
    dimension: int = 1,
    num_components: int = 4,
    spread: float = 0.03,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A mixture of Gaussians clipped to ``[0,1]^d``.

    Component centres are drawn uniformly; weights are Dirichlet(1) so some
    components dominate, giving a realistic mildly-skewed distribution.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if num_components < 1:
        raise ValueError(f"num_components must be at least 1, got {num_components}")
    generator = _generator(rng)
    centres = generator.random((num_components, dimension))
    weights = generator.dirichlet(np.ones(num_components))
    assignments = generator.choice(num_components, size=size, p=weights)
    points = centres[assignments] + generator.normal(0.0, spread, size=(size, dimension))
    return _shape(np.clip(points, 0.0, 1.0), dimension)


def zipf_cell_stream(
    size: int,
    dimension: int = 1,
    level: int = 8,
    exponent: float = 1.2,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Power-law mass over the ``2^level`` hierarchy cells of ``[0,1]^d``.

    Cell ``r`` (in a random ordering) receives probability proportional to
    ``(r+1)^{-exponent}``; points are uniform within their cell.  Larger
    exponents concentrate the stream in fewer cells, shrinking
    ``||tail_k||_1`` -- the knob the skew experiment sweeps.
    """
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if level < 1:
        raise ValueError(f"level must be at least 1, got {level}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    generator = _generator(rng)
    num_cells = 2**level
    ranks = np.arange(1, num_cells + 1, dtype=float)
    probabilities = ranks**-exponent if exponent > 0 else np.ones(num_cells)
    probabilities /= probabilities.sum()
    # Randomise which cell gets which rank so the mass is not always packed
    # into the left corner of the cube.
    cell_order = generator.permutation(num_cells)
    chosen_cells = cell_order[generator.choice(num_cells, size=size, p=probabilities)]

    # Decode each cell index into per-axis dyadic intervals matching the
    # hypercube's coordinate-cycling decomposition.
    points = np.empty((size, dimension))
    for row, cell in enumerate(chosen_cells):
        remaining = int(cell)
        bits = [(remaining >> (level - 1 - position)) & 1 for position in range(level)]
        lower = np.zeros(dimension)
        width = np.ones(dimension)
        for position, bit in enumerate(bits):
            axis = position % dimension
            width[axis] *= 0.5
            if bit:
                lower[axis] += width[axis]
        points[row] = lower + width * generator.random(dimension)
    return _shape(points, dimension)


def sparse_cluster_stream(
    size: int,
    dimension: int = 1,
    num_clusters: int = 3,
    cluster_width: float = 0.01,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """A few tight clusters: the sparse, near-zero-tail best case for pruning."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if num_clusters < 1:
        raise ValueError(f"num_clusters must be at least 1, got {num_clusters}")
    generator = _generator(rng)
    centres = generator.random((num_clusters, dimension)) * (1 - 2 * cluster_width) + cluster_width
    assignments = generator.integers(0, num_clusters, size=size)
    offsets = generator.uniform(-cluster_width, cluster_width, size=(size, dimension))
    points = np.clip(centres[assignments] + offsets, 0.0, 1.0)
    return _shape(points, dimension)


def beta_stream(
    size: int,
    alpha: float = 2.0,
    beta: float = 5.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """One-dimensional Beta(alpha, beta) samples: smooth asymmetric skew."""
    if size < 0:
        raise ValueError(f"size must be non-negative, got {size}")
    if alpha <= 0 or beta <= 0:
        raise ValueError("alpha and beta must be positive")
    generator = _generator(rng)
    return generator.beta(alpha, beta, size=size)


def _scenario_generator(kind: str):
    """A lazily-bound wrapper turning a scenario primitive into a generator.

    The scenario engine (:mod:`repro.stream.scenarios`) imports this module
    for its static components, so the binding must be deferred to call time
    to keep imports acyclic.
    """

    def wrapper(
        size: int,
        dimension: int = 1,
        rng: np.random.Generator | int | None = None,
        **params,
    ) -> np.ndarray:
        from repro.stream import scenarios

        return scenarios.generate(kind, size, dimension=dimension, rng=rng, **params)

    wrapper.__name__ = f"{kind}_stream"
    wrapper.__qualname__ = f"{kind}_stream"
    wrapper.__doc__ = (
        f"Time-varying ``{kind}`` scenario stream (see repro.stream.scenarios)."
    )
    return wrapper


#: Generator names that resolve through the scenario engine: their streams
#: are schedules of epochs over the static generators below, and the matrix
#: runner evaluates them in trajectory (per-epoch) mode.
SCENARIO_GENERATOR_NAMES = frozenset(
    {"drift", "mixture_shift", "diurnal", "flash_crowd", "scenario"}
)

#: Name -> generator mapping used by declarative workload specs (the
#: experiment-matrix runner resolves its ``generators`` axis through this).
_NAMED_GENERATORS = {
    "uniform": uniform_stream,
    "gaussian_mixture": gaussian_mixture_stream,
    "zipf": zipf_cell_stream,
    "sparse_cluster": sparse_cluster_stream,
    "beta": beta_stream,
    **{name: _scenario_generator(name) for name in sorted(SCENARIO_GENERATOR_NAMES)},
}


def available_generators() -> list[str]:
    """Sorted names of the workload generators addressable by name.

    Example:
        >>> available_generators()  # doctest: +NORMALIZE_WHITESPACE
        ['beta', 'diurnal', 'drift', 'flash_crowd', 'gaussian_mixture',
         'mixture_shift', 'scenario', 'sparse_cluster', 'uniform', 'zipf']
    """
    return sorted(_NAMED_GENERATORS)


def make_stream(
    name: str,
    size: int,
    dimension: int = 1,
    rng: np.random.Generator | int | None = None,
    **params,
) -> np.ndarray:
    """Generate a named workload (the string form the matrix runner uses).

    ``params`` are forwarded to the underlying generator (e.g. ``exponent``
    for ``zipf``).  Generators that are one-dimensional only (``beta``)
    reject ``dimension > 1`` with a clear error instead of silently ignoring
    the request.

    Example:
        >>> make_stream("uniform", 4, dimension=2, rng=0).shape
        (4, 2)
        >>> make_stream("zipf", 8, rng=0, exponent=2.0).shape
        (8,)
    """
    key = str(name).strip().lower()
    if key not in _NAMED_GENERATORS:
        raise ValueError(
            f"unknown generator {name!r}; known generators: "
            f"{', '.join(available_generators())}"
        )
    factory = _NAMED_GENERATORS[key]
    kwargs = dict(params)
    if factory is beta_stream:
        if dimension != 1:
            raise ValueError(f"generator {name!r} is one-dimensional only")
    else:
        kwargs["dimension"] = dimension
    try:
        return factory(size, rng=rng, **kwargs)
    except TypeError as error:
        # Unknown keyword arguments in a spec's generator params are user
        # input errors, not programming errors.
        raise ValueError(f"bad parameters for generator {name!r}: {error}") from error
