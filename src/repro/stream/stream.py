"""Single-pass stream wrapper with throughput accounting.

The wrapper enforces the streaming contract PrivHP is analysed under: items
can be consumed exactly once, in order, and nothing is retained.  It also
times the consumer so the performance benchmark can report update throughput
(Corollary 1 claims ``O(log(eps n))`` update time).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Iterable, Iterator

__all__ = ["StreamStats", "DataStream"]


@dataclass
class StreamStats:
    """Throughput statistics collected while a stream was consumed."""

    items: int = 0
    elapsed_seconds: float = 0.0

    @property
    def items_per_second(self) -> float:
        """Average consumption rate (0 when nothing was consumed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.items / self.elapsed_seconds

    @property
    def seconds_per_item(self) -> float:
        """Average per-item latency (0 when nothing was consumed)."""
        if self.items == 0:
            return 0.0
        return self.elapsed_seconds / self.items


class DataStream:
    """A strictly single-pass, order-preserving view over a data source."""

    def __init__(self, source: Iterable, name: str = "stream") -> None:
        self._iterator: Iterator | None = iter(source)
        self.name = name
        self.stats = StreamStats()
        self._consumed = False

    def __iter__(self) -> Iterator:
        if self._consumed:
            raise RuntimeError(
                f"stream {self.name!r} has already been consumed; "
                "a data stream can only be read once"
            )
        self._consumed = True
        iterator = self._iterator
        self._iterator = None
        assert iterator is not None
        start = time.perf_counter()
        for item in iterator:
            self.stats.items += 1
            yield item
        self.stats.elapsed_seconds = time.perf_counter() - start

    @property
    def consumed(self) -> bool:
        """Whether iteration has started (and therefore no second pass exists)."""
        return self._consumed

    def feed(self, consumer) -> StreamStats:
        """Push the stream into an object exposing ``update(item)`` and time it.

        This is the canonical way the benchmarks drive PrivHP: it measures the
        consumer's update cost, not just the iteration cost.
        """
        if self._consumed:
            raise RuntimeError(f"stream {self.name!r} has already been consumed")
        self._consumed = True
        iterator = self._iterator
        self._iterator = None
        assert iterator is not None
        start = time.perf_counter()
        for item in iterator:
            consumer.update(item)
            self.stats.items += 1
        self.stats.elapsed_seconds = time.perf_counter() - start
        return self.stats
