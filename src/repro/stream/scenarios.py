"""Composable time-varying workload scenarios for the experiment matrix.

Every generator in :mod:`repro.stream.generators` is a *static* distribution;
the paper's error guarantees, however, are governed by tail mass, and the
interesting regime for continual observation is precisely when the tail
*moves*.  A :class:`Scenario` is a JSON-loadable schedule of **epochs** over
the static generators:

* ``drift`` -- linear parameter interpolation between two configurations of
  one generator (e.g. Zipf exponent 0.5 -> 2.5 over eight epochs),
* ``mixture_shift`` -- fixed component generators whose mixing weights
  interpolate between a start and an end profile,
* ``diurnal`` -- cyclic modulation of the per-epoch rate (and optionally of
  one numeric parameter) around a base generator,
* ``flash_crowd`` -- a transient sparse-cluster burst overlaid on a base
  stream for a window of epochs, optionally with a rate spike,
* ``schedule`` -- an explicit piecewise schedule switching generators at
  given epoch boundaries,
* ``compose`` -- sequencing (``mode="sequence"``) or per-epoch overlay
  (``mode="overlay"``) of sub-scenarios.

Determinism contract: every epoch (and every mixture component within an
epoch) draws from its own :class:`numpy.random.SeedSequence` child keyed by
``(epoch_index, component_index)``, so a scenario materialises byte-identical
streams for any worker count, batch size, or evaluation order -- the same
discipline the matrix runner uses for its cells.

Example:
    >>> scenario = scenario_from_dict({
    ...     "type": "drift", "epochs": 4,
    ...     "start": {"name": "zipf", "params": {"exponent": 0.5}},
    ...     "end": {"name": "zipf", "params": {"exponent": 2.5}},
    ... })
    >>> scenario.num_epochs
    4
    >>> scenario.epoch_sizes(10)
    [3, 3, 2, 2]
    >>> stream = scenario.sample(100, rng=0)
    >>> stream.shape
    (100,)
    >>> import numpy as np
    >>> bool(np.array_equal(stream, np.concatenate(scenario.sample_epochs(100, rng=0))))
    True
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.stream import generators as _generators

__all__ = [
    "ScenarioSpecError",
    "ScenarioComponent",
    "ScenarioEpoch",
    "Scenario",
    "scenario_from_dict",
    "load_scenario",
    "scenario_generator_names",
    "generate",
    "generate_epochs",
    "multi_tenant_epochs",
    "multi_tenant_records",
]


class ScenarioSpecError(ValueError):
    """A scenario spec document is malformed; the message names the field."""


#: The static generators scenario components may reference.  Scenario
#: primitives cannot nest as components (use ``compose`` for that), so the
#: engine can never recurse through :func:`repro.stream.generators.make_stream`.
_STATIC_GENERATORS = ("beta", "gaussian_mixture", "sparse_cluster", "uniform", "zipf")

#: Generator-registry names resolved through this module (the time-varying
#: axis of ``available_generators``/``make_stream``).
_SCENARIO_KINDS = ("diurnal", "drift", "flash_crowd", "mixture_shift", "scenario")

#: SeedSequence spawn-key stream tags.  Component streams within an epoch use
#: ``(epoch, 1 + component)``; the mixture assignment uses ``(epoch, 0)``;
#: multi-tenant variants prepend a tenant tag so tenants are correlated in
#: *schedule* but independent in noise.
_ASSIGN_STREAM = 0
_TENANT_STREAM = 1


def scenario_generator_names() -> frozenset:
    """The generator-registry names served by the scenario engine.

    Example:
        >>> sorted(scenario_generator_names())
        ['diurnal', 'drift', 'flash_crowd', 'mixture_shift', 'scenario']
    """
    return frozenset(_SCENARIO_KINDS)


# --------------------------------------------------------------------------- #
# compiled form
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ScenarioComponent:
    """One mixture component of an epoch: a static generator + weight."""

    generator: str
    params: dict = field(default_factory=dict)
    weight: float = 1.0


@dataclass(frozen=True)
class ScenarioEpoch:
    """One epoch: a relative size share and its component mixture."""

    index: int
    weight: float
    components: tuple


class Scenario:
    """A compiled schedule of epochs, sampled with per-epoch spawned RNGs.

    Build one from a JSON document with :func:`scenario_from_dict` (or
    :func:`load_scenario` for a file).  ``sample`` materialises the whole
    stream; ``sample_epochs`` returns the identical bytes split at epoch
    boundaries, which is what the matrix runner's trajectory mode consumes.

    Example:
        >>> scenario = scenario_from_dict({
        ...     "type": "mixture_shift", "epochs": 3,
        ...     "components": ["uniform", {"name": "sparse_cluster",
        ...                                "params": {"num_clusters": 2}}],
        ...     "start_weights": [1.0, 0.0], "end_weights": [0.0, 1.0],
        ... })
        >>> [len(epoch.components) for epoch in scenario.epochs]
        [1, 2, 1]
    """

    def __init__(self, epochs, label: str = "scenario", default_size: int | None = None):
        epochs = tuple(epochs)
        if not epochs:
            raise ScenarioSpecError("a scenario needs at least one epoch")
        for epoch in epochs:
            if epoch.weight <= 0 or not math.isfinite(epoch.weight):
                raise ScenarioSpecError(
                    f"epoch {epoch.index}: weight must be positive and finite, "
                    f"got {epoch.weight!r}"
                )
            if not epoch.components:
                raise ScenarioSpecError(f"epoch {epoch.index}: has no components")
        self.epochs = epochs
        self.label = str(label)
        self.default_size = default_size

    @property
    def num_epochs(self) -> int:
        """Number of epochs in the schedule."""
        return len(self.epochs)

    # -------------------------------------------------------------- #
    def epoch_sizes(self, size: int) -> list[int]:
        """Split ``size`` items over the epochs by weight (largest remainder).

        Deterministic: fractional leftovers go to the largest remainders,
        ties broken by epoch order.
        """
        if size < 0:
            raise ScenarioSpecError(f"size must be non-negative, got {size}")
        weights = np.array([epoch.weight for epoch in self.epochs], dtype=float)
        ideal = size * weights / weights.sum()
        base = np.floor(ideal).astype(int)
        shortfall = size - int(base.sum())
        if shortfall:
            remainders = ideal - base
            # argsort is stable, so equal remainders resolve by epoch order.
            for index in np.argsort(-remainders, kind="stable")[:shortfall]:
                base[index] += 1
        return [int(value) for value in base]

    def sample_epochs(
        self,
        size: int,
        dimension: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> list[np.ndarray]:
        """Materialise the scenario as one array per epoch (byte-stable)."""
        sizes = self.epoch_sizes(size)
        entropy = _root_entropy(rng)
        return [
            _sample_epoch(epoch, count, dimension, entropy)
            for epoch, count in zip(self.epochs, sizes)
        ]

    def sample(
        self,
        size: int,
        dimension: int = 1,
        rng: np.random.Generator | int | None = None,
    ) -> np.ndarray:
        """Materialise the whole stream (the concatenated epoch arrays)."""
        return np.concatenate(self.sample_epochs(size, dimension=dimension, rng=rng))

    def describe(self, size: int | None = None) -> list[dict]:
        """Per-epoch summary rows (for the CLI's inspection table)."""
        sizes = self.epoch_sizes(size) if size is not None else [None] * self.num_epochs
        rows = []
        for epoch, count in zip(self.epochs, sizes):
            total = sum(component.weight for component in epoch.components)
            mixture = " + ".join(
                f"{component.weight / total:.2f}*{component.generator}"
                f"{_format_params(component.params)}"
                for component in epoch.components
            )
            row = {"epoch": epoch.index, "weight": round(epoch.weight, 6), "mixture": mixture}
            if count is not None:
                row["items"] = count
            rows.append(row)
        return rows


def _format_params(params: dict) -> str:
    if not params:
        return ""
    inner = ",".join(f"{key}={params[key]}" for key in sorted(params))
    return f"({inner})"


def _root_entropy(rng: np.random.Generator | np.random.SeedSequence | int | None) -> int:
    """One root integer all epoch/component SeedSequence children key off."""
    if isinstance(rng, np.random.SeedSequence):
        return int(rng.generate_state(1, np.uint64)[0])
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63 - 1))
    if rng is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    return int(rng)


def _empty(dimension: int) -> np.ndarray:
    return np.empty(0) if dimension == 1 else np.empty((0, dimension))


def _component_points(
    component: ScenarioComponent,
    count: int,
    dimension: int,
    rng: np.random.Generator,
) -> np.ndarray:
    # Component names are validated against _STATIC_GENERATORS at compile
    # time, so this can never re-enter the scenario wrappers.
    return _generators.make_stream(
        component.generator, count, dimension=dimension, rng=rng, **component.params
    )


def _sample_epoch(
    epoch: ScenarioEpoch, count: int, dimension: int, entropy: int
) -> np.ndarray:
    if count == 0:
        return _empty(dimension)
    components = epoch.components
    if len(components) == 1:
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy, spawn_key=(epoch.index, 1))
        )
        return _component_points(components[0], count, dimension, rng)
    weights = np.array([component.weight for component in components], dtype=float)
    weights /= weights.sum()
    assign_rng = np.random.default_rng(
        np.random.SeedSequence(entropy, spawn_key=(epoch.index, _ASSIGN_STREAM))
    )
    assignment = assign_rng.choice(len(components), size=count, p=weights)
    out = np.empty(count) if dimension == 1 else np.empty((count, dimension))
    for ci, component in enumerate(components):
        mask = assignment == ci
        members = int(mask.sum())
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy, spawn_key=(epoch.index, 1 + ci))
        )
        out[mask] = _component_points(component, members, dimension, rng)
    return out


# --------------------------------------------------------------------------- #
# spec compilation
# --------------------------------------------------------------------------- #
def _require_fields(spec: dict, required: tuple, optional: tuple, kind: str) -> None:
    unknown = sorted(set(spec) - set(required) - set(optional) - {"type"})
    if unknown:
        raise ScenarioSpecError(
            f"{kind} spec has unknown field(s): {', '.join(unknown)}; known "
            f"fields: {', '.join(sorted(set(required) | set(optional)))}"
        )
    missing = sorted(set(required) - set(spec))
    if missing:
        raise ScenarioSpecError(
            f"{kind} spec is missing required field(s): {', '.join(missing)}"
        )


def _positive_int(spec: dict, name: str, kind: str, minimum: int = 1) -> int:
    value = spec[name]
    try:
        as_int = int(value)
    except (TypeError, ValueError):
        raise ScenarioSpecError(
            f"{kind} field {name!r} must be an integer, got {value!r}"
        ) from None
    if as_int != value or as_int < minimum:
        raise ScenarioSpecError(
            f"{kind} field {name!r} must be an integer >= {minimum}, got {value!r}"
        )
    return as_int


def _finite_float(value, name: str, kind: str) -> float:
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ScenarioSpecError(
            f"{kind} field {name!r} must be a number, got {value!r}"
        ) from None
    if not math.isfinite(value):
        raise ScenarioSpecError(f"{kind} field {name!r} must be finite, got {value!r}")
    return value


def _parse_generator(value, field_name: str, kind: str) -> tuple[str, dict]:
    """Normalise a component reference (name string or {name, params})."""
    if isinstance(value, str):
        name, params = value.strip().lower(), {}
    elif isinstance(value, dict):
        unknown = sorted(set(value) - {"name", "params"})
        if unknown:
            raise ScenarioSpecError(
                f"{kind} field {field_name!r} has unknown key(s): "
                f"{', '.join(unknown)}; expected name, params"
            )
        if "name" not in value or not str(value["name"]).strip():
            raise ScenarioSpecError(f"{kind} field {field_name!r} is missing its 'name'")
        name = str(value["name"]).strip().lower()
        params = value.get("params", {})
        if not isinstance(params, dict):
            raise ScenarioSpecError(
                f"{kind} field {field_name!r}: 'params' must be an object, "
                f"got {type(params).__name__}"
            )
    else:
        raise ScenarioSpecError(
            f"{kind} field {field_name!r} must be a generator name or "
            f"{{name, params}} object, got {type(value).__name__}"
        )
    if name not in _STATIC_GENERATORS:
        raise ScenarioSpecError(
            f"{kind} field {field_name!r}: unknown generator {name!r}; scenario "
            f"components must be one of the static generators: "
            f"{', '.join(_STATIC_GENERATORS)} (nest scenarios with 'compose')"
        )
    return name, dict(params)


def _lerp_params(start: dict, end: dict, fraction: float, kind: str) -> dict:
    """Interpolate numeric parameters; non-numeric ones must agree."""
    result = {}
    for key in sorted(set(start) | set(end)):
        if key not in start or key not in end:
            raise ScenarioSpecError(
                f"{kind}: parameter {key!r} must appear in both 'start' and "
                "'end' params to be interpolated"
            )
        a, b = start[key], end[key]
        numeric = all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in (a, b)
        )
        if not numeric:
            if a != b:
                raise ScenarioSpecError(
                    f"{kind}: non-numeric parameter {key!r} differs between "
                    f"'start' ({a!r}) and 'end' ({b!r}); only numbers drift"
                )
            result[key] = a
            continue
        value = a + (b - a) * fraction
        # Integer-integer pairs stay integers (e.g. num_components 2 -> 6).
        if isinstance(a, int) and isinstance(b, int):
            value = int(round(value))
        result[key] = value
    return result


def _compile_drift(spec: dict) -> tuple:
    _require_fields(spec, ("start", "end", "epochs"), (), "drift")
    epochs = _positive_int(spec, "epochs", "drift")
    start_name, start_params = _parse_generator(spec["start"], "start", "drift")
    end_name, end_params = _parse_generator(spec["end"], "end", "drift")
    if start_name != end_name:
        raise ScenarioSpecError(
            f"drift interpolates the parameters of one generator, but 'start' "
            f"names {start_name!r} and 'end' names {end_name!r}; use "
            "'mixture_shift' to move mass between different generators"
        )
    compiled = []
    for index in range(epochs):
        fraction = index / (epochs - 1) if epochs > 1 else 0.0
        params = _lerp_params(start_params, end_params, fraction, "drift")
        compiled.append(ScenarioEpoch(
            index=index,
            weight=1.0,
            components=(ScenarioComponent(start_name, params),),
        ))
    return tuple(compiled)


def _compile_mixture_shift(spec: dict) -> tuple:
    _require_fields(
        spec, ("components", "start_weights", "end_weights", "epochs"), (), "mixture_shift"
    )
    epochs = _positive_int(spec, "epochs", "mixture_shift")
    raw = spec["components"]
    if not isinstance(raw, list) or not raw:
        raise ScenarioSpecError(
            "mixture_shift field 'components' must be a non-empty list"
        )
    components = [
        _parse_generator(value, f"components[{ci}]", "mixture_shift")
        for ci, value in enumerate(raw)
    ]
    profiles = {}
    for name in ("start_weights", "end_weights"):
        values = spec[name]
        if not isinstance(values, list) or len(values) != len(components):
            raise ScenarioSpecError(
                f"mixture_shift field {name!r} must list one weight per "
                f"component ({len(components)}), got {values!r}"
            )
        weights = [_finite_float(v, name, "mixture_shift") for v in values]
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ScenarioSpecError(
                f"mixture_shift field {name!r} must be non-negative with a "
                f"positive sum, got {values!r}"
            )
        profiles[name] = weights
    compiled = []
    for index in range(epochs):
        fraction = index / (epochs - 1) if epochs > 1 else 0.0
        mixed = [
            a + (b - a) * fraction
            for a, b in zip(profiles["start_weights"], profiles["end_weights"])
        ]
        present = tuple(
            ScenarioComponent(name, params, weight)
            for (name, params), weight in zip(components, mixed)
            if weight > 0
        )
        compiled.append(ScenarioEpoch(index=index, weight=1.0, components=present))
    return tuple(compiled)


def _compile_diurnal(spec: dict) -> tuple:
    _require_fields(
        spec,
        ("base", "epochs"),
        ("period", "rate_amplitude", "param", "param_amplitude", "phase"),
        "diurnal",
    )
    epochs = _positive_int(spec, "epochs", "diurnal")
    name, params = _parse_generator(spec["base"], "base", "diurnal")
    period = _finite_float(spec.get("period", epochs), "period", "diurnal")
    if period <= 0:
        raise ScenarioSpecError(f"diurnal field 'period' must be positive, got {period!r}")
    phase = _finite_float(spec.get("phase", 0.0), "phase", "diurnal")
    rate_amplitude = _finite_float(spec.get("rate_amplitude", 0.5), "rate_amplitude", "diurnal")
    if not 0 <= rate_amplitude < 1:
        raise ScenarioSpecError(
            f"diurnal field 'rate_amplitude' must be in [0, 1) so every epoch "
            f"keeps positive rate, got {rate_amplitude!r}"
        )
    param = spec.get("param")
    param_amplitude = _finite_float(
        spec.get("param_amplitude", 0.0), "param_amplitude", "diurnal"
    )
    if param is not None:
        if param not in params:
            raise ScenarioSpecError(
                f"diurnal field 'param' names {param!r}, which is not in the "
                f"base generator's params ({', '.join(sorted(params)) or 'none'})"
            )
        if not isinstance(params[param], (int, float)) or isinstance(params[param], bool):
            raise ScenarioSpecError(
                f"diurnal field 'param' must name a numeric parameter, but "
                f"{param!r} is {params[param]!r}"
            )
    elif param_amplitude:
        raise ScenarioSpecError(
            "diurnal field 'param_amplitude' needs 'param' to name the "
            "modulated parameter"
        )
    compiled = []
    for index in range(epochs):
        cycle = math.sin(2.0 * math.pi * (index + phase) / period)
        epoch_params = dict(params)
        if param is not None and param_amplitude:
            epoch_params[param] = params[param] * (1.0 + param_amplitude * cycle)
        compiled.append(ScenarioEpoch(
            index=index,
            weight=1.0 + rate_amplitude * cycle,
            components=(ScenarioComponent(name, epoch_params),),
        ))
    return tuple(compiled)


#: Default flash-crowd burst: a single very tight cluster, the sparsest
#: (near-zero-tail) shape the generators offer.
_DEFAULT_BURST = {"name": "sparse_cluster", "params": {"num_clusters": 1, "cluster_width": 0.005}}


def _compile_flash_crowd(spec: dict) -> tuple:
    _require_fields(
        spec,
        ("base", "epochs", "burst_start", "burst_epochs"),
        ("burst", "burst_fraction", "burst_scale"),
        "flash_crowd",
    )
    epochs = _positive_int(spec, "epochs", "flash_crowd")
    base_name, base_params = _parse_generator(spec["base"], "base", "flash_crowd")
    burst_name, burst_params = _parse_generator(
        spec.get("burst", _DEFAULT_BURST), "burst", "flash_crowd"
    )
    burst_start = _positive_int(spec, "burst_start", "flash_crowd", minimum=0)
    burst_epochs = _positive_int(spec, "burst_epochs", "flash_crowd")
    if burst_start >= epochs:
        raise ScenarioSpecError(
            f"flash_crowd field 'burst_start' must be < 'epochs' ({epochs}), "
            f"got {burst_start}"
        )
    if burst_start + burst_epochs > epochs:
        raise ScenarioSpecError(
            f"flash_crowd burst window [{burst_start}, {burst_start + burst_epochs}) "
            f"runs past the last epoch ({epochs})"
        )
    burst_fraction = _finite_float(
        spec.get("burst_fraction", 0.8), "burst_fraction", "flash_crowd"
    )
    if not 0 < burst_fraction <= 1:
        raise ScenarioSpecError(
            f"flash_crowd field 'burst_fraction' must be in (0, 1], got {burst_fraction!r}"
        )
    burst_scale = _finite_float(spec.get("burst_scale", 1.0), "burst_scale", "flash_crowd")
    if burst_scale < 1:
        raise ScenarioSpecError(
            f"flash_crowd field 'burst_scale' must be >= 1 (the burst adds "
            f"traffic, never removes it), got {burst_scale!r}"
        )
    base = ScenarioComponent(base_name, base_params, 1.0)
    compiled = []
    for index in range(epochs):
        in_burst = burst_start <= index < burst_start + burst_epochs
        if in_burst:
            components = (
                ScenarioComponent(base_name, base_params, 1.0 - burst_fraction),
                ScenarioComponent(burst_name, burst_params, burst_fraction),
            )
            if burst_fraction == 1.0:
                components = components[1:]
            compiled.append(ScenarioEpoch(index, burst_scale, components))
        else:
            compiled.append(ScenarioEpoch(index, 1.0, (base,)))
    return tuple(compiled)


def _compile_schedule(spec: dict) -> tuple:
    _require_fields(spec, ("epochs", "num_epochs"), (), "schedule")
    num_epochs = _positive_int(spec, "num_epochs", "schedule")
    entries = spec["epochs"]
    if not isinstance(entries, list) or not entries:
        raise ScenarioSpecError(
            "schedule field 'epochs' must be a non-empty list of "
            "{at, generator} entries"
        )
    boundaries = []
    for ei, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ScenarioSpecError(
                f"schedule field 'epochs[{ei}]' must be an object with "
                f"'at' and 'generator', got {type(entry).__name__}"
            )
        _require_fields(entry, ("at", "generator"), (), f"schedule epochs[{ei}]")
        at = _positive_int(entry, "at", f"schedule epochs[{ei}]", minimum=0)
        if at >= num_epochs:
            raise ScenarioSpecError(
                f"schedule epochs[{ei}] field 'at' ({at}) must be < "
                f"num_epochs ({num_epochs})"
            )
        name, params = _parse_generator(entry["generator"], "generator", f"schedule epochs[{ei}]")
        boundaries.append((at, ScenarioComponent(name, params)))
    ats = [at for at, _component in boundaries]
    if ats[0] != 0:
        raise ScenarioSpecError(
            f"schedule epochs must start at 'at' 0 (every epoch needs an "
            f"active generator), got first boundary at {ats[0]}"
        )
    if any(b <= a for a, b in zip(ats, ats[1:])):
        raise ScenarioSpecError(
            f"schedule epoch boundaries must be strictly increasing "
            f"('at' values {ats} are non-monotone)"
        )
    compiled = []
    active = 0
    for index in range(num_epochs):
        if active + 1 < len(boundaries) and index >= boundaries[active + 1][0]:
            active += 1
        compiled.append(ScenarioEpoch(index, 1.0, (boundaries[active][1],)))
    return tuple(compiled)


def _compile_compose(spec: dict) -> tuple:
    _require_fields(spec, ("mode", "parts"), ("weights",), "compose")
    mode = str(spec["mode"]).strip().lower()
    if mode not in ("sequence", "overlay"):
        raise ScenarioSpecError(
            f"compose field 'mode' must be 'sequence' or 'overlay', got {spec['mode']!r}"
        )
    parts = spec["parts"]
    if not isinstance(parts, list) or not parts:
        raise ScenarioSpecError("compose field 'parts' must be a non-empty list of scenario specs")
    compiled_parts = [_compile(part, top_level=False) for part in parts]
    if "weights" in spec:
        weights = spec["weights"]
        if not isinstance(weights, list) or len(weights) != len(parts):
            raise ScenarioSpecError(
                f"compose field 'weights' must list one weight per part "
                f"({len(parts)}), got {weights!r}"
            )
        weights = [_finite_float(value, "weights", "compose") for value in weights]
        if any(w <= 0 for w in weights):
            raise ScenarioSpecError(
                f"compose field 'weights' must be positive, got {spec['weights']!r}"
            )
    else:
        weights = [1.0] * len(parts)

    if mode == "sequence":
        compiled = []
        for part, weight in zip(compiled_parts, weights):
            # Scale each part's share of the stream while preserving its
            # internal epoch-to-epoch shape (diurnal modulation survives).
            for epoch in part:
                compiled.append(ScenarioEpoch(
                    index=len(compiled),
                    weight=epoch.weight * weight,
                    components=epoch.components,
                ))
        return tuple(compiled)

    lengths = {len(part) for part in compiled_parts}
    if len(lengths) > 1:
        raise ScenarioSpecError(
            f"compose mode 'overlay' needs every part to have the same number "
            f"of epochs, got {sorted(len(part) for part in compiled_parts)}"
        )
    compiled = []
    for index in range(lengths.pop()):
        merged_weight = 0.0
        merged_components = []
        for part, weight in zip(compiled_parts, weights):
            epoch = part[index]
            share = epoch.weight * weight
            merged_weight += share
            total = sum(component.weight for component in epoch.components)
            for component in epoch.components:
                merged_components.append(ScenarioComponent(
                    component.generator,
                    component.params,
                    share * component.weight / total,
                ))
        compiled.append(ScenarioEpoch(index, merged_weight, tuple(merged_components)))
    return tuple(compiled)


_COMPILERS = {
    "drift": _compile_drift,
    "mixture_shift": _compile_mixture_shift,
    "diurnal": _compile_diurnal,
    "flash_crowd": _compile_flash_crowd,
    "schedule": _compile_schedule,
    "compose": _compile_compose,
}

#: Fields allowed only on the top-level spec (not on compose parts).
_TOP_LEVEL_FIELDS = ("label", "size")


def _compile(spec, top_level: bool) -> tuple:
    if not isinstance(spec, dict):
        raise ScenarioSpecError(
            f"a scenario spec must be a JSON object, got {type(spec).__name__}"
        )
    if "type" not in spec:
        raise ScenarioSpecError(
            f"scenario spec is missing its 'type'; known primitives: "
            f"{', '.join(sorted(_COMPILERS))}"
        )
    kind = str(spec["type"]).strip().lower()
    if kind not in _COMPILERS:
        raise ScenarioSpecError(
            f"scenario spec field 'type': unknown primitive {spec['type']!r}; "
            f"known primitives: {', '.join(sorted(_COMPILERS))}"
        )
    body = dict(spec)
    for name in _TOP_LEVEL_FIELDS:
        if name in body:
            if not top_level:
                raise ScenarioSpecError(
                    f"field {name!r} is only valid on the top-level scenario "
                    f"spec, not inside compose parts"
                )
            del body[name]
    return _COMPILERS[kind](body)


def scenario_from_dict(spec: dict) -> Scenario:
    """Compile a scenario spec document into a :class:`Scenario`.

    Example:
        >>> scenario_from_dict({
        ...     "type": "flash_crowd", "base": "uniform", "epochs": 6,
        ...     "burst_start": 2, "burst_epochs": 2, "burst_scale": 2.0,
        ... }).epoch_sizes(80)
        [10, 10, 20, 20, 10, 10]
    """
    epochs = _compile(spec, top_level=True)
    label = str(spec.get("label", spec["type"])).strip() or str(spec["type"])
    size = spec.get("size")
    if size is not None:
        size = _positive_int(spec, "size", "scenario")
    return Scenario(epochs, label=label, default_size=size)


def load_scenario(path: str | pathlib.Path) -> Scenario:
    """Load and compile a scenario spec from a JSON file."""
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ScenarioSpecError(f"cannot read scenario file {path}: {error}") from error
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ScenarioSpecError(f"scenario file {path} is not valid JSON: {error}") from error
    return scenario_from_dict(document)


# --------------------------------------------------------------------------- #
# generator-registry entry points
# --------------------------------------------------------------------------- #
def _spec_for(kind: str, params: dict) -> dict:
    if kind == "scenario":
        spec = params.get("spec")
        if spec is None:
            raise ScenarioSpecError(
                "generator 'scenario' needs a 'spec' parameter holding the "
                "scenario document (e.g. {\"spec\": {\"type\": \"drift\", ...}})"
            )
        extras = sorted(set(params) - {"spec"})
        if extras:
            raise ScenarioSpecError(
                f"generator 'scenario' takes only 'spec'; unknown parameter(s): "
                f"{', '.join(extras)}"
            )
        return spec
    return {"type": kind, **params}


def generate(
    kind: str,
    size: int,
    dimension: int = 1,
    rng: np.random.Generator | int | None = None,
    **params,
) -> np.ndarray:
    """Materialise a scenario stream by primitive name (``make_stream`` hook).

    Example:
        >>> generate("drift", 16, rng=0, epochs=4,
        ...          start={"name": "zipf", "params": {"exponent": 0.5}},
        ...          end={"name": "zipf", "params": {"exponent": 2.5}}).shape
        (16,)
    """
    return scenario_from_dict(_spec_for(kind, params)).sample(
        size, dimension=dimension, rng=rng
    )


def generate_epochs(
    kind: str,
    size: int,
    dimension: int = 1,
    rng: np.random.Generator | int | None = None,
    **params,
) -> list[np.ndarray]:
    """Like :func:`generate` but split at epoch boundaries (identical bytes)."""
    return scenario_from_dict(_spec_for(kind, params)).sample_epochs(
        size, dimension=dimension, rng=rng
    )


# --------------------------------------------------------------------------- #
# correlated multi-tenant variants (feeding repro.ingest)
# --------------------------------------------------------------------------- #
def multi_tenant_epochs(
    scenario: Scenario,
    tenants,
    size_per_tenant: int,
    dimension: int = 1,
    rng: np.random.Generator | int | None = None,
):
    """Yield ``(epoch_index, {tenant_id: points})`` for a shared schedule.

    Every tenant follows the *same* epoch schedule (correlated drift, bursts
    hitting the whole fleet at once) but draws from its own spawned RNG
    stream, so tenants are statistically independent given the schedule and
    the output is byte-stable for any iteration order.

    Example:
        >>> scenario = scenario_from_dict({
        ...     "type": "drift", "epochs": 2,
        ...     "start": {"name": "zipf", "params": {"exponent": 0.5}},
        ...     "end": {"name": "zipf", "params": {"exponent": 2.0}},
        ... })
        >>> epochs = list(multi_tenant_epochs(scenario, ["a", "b"], 10, rng=0))
        >>> [(index, sorted(points)) for index, points in epochs][0][0]
        0
        >>> sorted(epochs[0][1])
        ['a', 'b']
    """
    tenants = [str(tenant) for tenant in tenants]
    if not tenants:
        raise ScenarioSpecError("multi_tenant_epochs needs at least one tenant")
    if len(set(tenants)) != len(tenants):
        raise ScenarioSpecError("tenant ids must be unique")
    entropy = _root_entropy(rng)
    sizes = scenario.epoch_sizes(size_per_tenant)
    for epoch, count in zip(scenario.epochs, sizes):
        yield epoch.index, {
            tenant: _sample_epoch(
                epoch,
                count,
                dimension,
                # Tenant-tagged child entropy: same schedule, independent noise.
                int(np.random.SeedSequence(
                    entropy, spawn_key=(_TENANT_STREAM, ti)
                ).generate_state(1, np.uint64)[0]),
            )
            for ti, tenant in enumerate(tenants)
        }


def multi_tenant_records(
    scenario: Scenario,
    tenants,
    size_per_tenant: int,
    dimension: int = 1,
    rng: np.random.Generator | int | None = None,
):
    """Flatten :func:`multi_tenant_epochs` into intake-ready append records.

    Yields ``{"tenant": id, "epoch": index, "values": [...]}`` dicts, one per
    tenant per epoch, in deterministic (epoch, tenant) order -- exactly the
    JSONL shape ``repro.ingest.intake.iter_append_records`` consumes, so a
    scenario can drive the multi-tenant ingestion service end to end.

    Example:
        >>> scenario = scenario_from_dict({
        ...     "type": "flash_crowd", "base": "uniform", "epochs": 2,
        ...     "burst_start": 1, "burst_epochs": 1,
        ... })
        >>> records = list(multi_tenant_records(scenario, ["acme"], 8, rng=0))
        >>> [record["epoch"] for record in records]
        [0, 1]
        >>> records[0]["tenant"]
        'acme'
    """
    for index, points in multi_tenant_epochs(
        scenario, tenants, size_per_tenant, dimension=dimension, rng=rng
    ):
        for tenant in sorted(points):
            values = np.asarray(points[tenant])
            yield {
                "tenant": tenant,
                "epoch": index,
                "values": values.reshape(len(values), -1).tolist()
                if values.ndim > 1
                else values.tolist(),
            }
