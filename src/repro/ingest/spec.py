"""Per-tenant configuration: what one private stream looks like to the service.

A :class:`TenantSpec` is the unit of registration for
:class:`repro.ingest.service.IngestService`: a tenant id plus everything the
:class:`repro.api.builder.PrivHPBuilder` needs to construct that tenant's
summarizer (domain spec, budget, pruning, stream size, one-shot vs
continual).  Specs are plain JSON documents so a service deployment is a
directory of ``*.json`` files (:func:`load_tenant_specs`), and every spec is
validated at construction -- a bad tenant file fails at registration, never
mid-ingestion.

The tenant id doubles as the stem of the tenant's checkpoint and release
files, so it is restricted to filename-safe characters.
"""

from __future__ import annotations

import json
import pathlib
import re
from dataclasses import asdict, dataclass

from repro.api.builder import PrivHPBuilder
from repro.api.registry import make_domain
from repro.domain.base import Domain

__all__ = ["TenantSpec", "load_tenant_specs", "save_tenant_spec"]

#: Tenant ids become file stems (checkpoints, releases), so only
#: filename-safe characters are allowed.
_TENANT_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class TenantSpec:
    """Everything needed to build (and rebuild) one tenant's summarizer.

    Example:
        >>> spec = TenantSpec("acme", domain="interval", epsilon=1.0,
        ...                   stream_size=256, seed=7)
        >>> spec.build_summarizer().items_processed
        0
        >>> TenantSpec.from_dict(spec.to_dict()) == spec
        True
    """

    #: Unique tenant name; also the stem of the tenant's on-disk artefacts.
    tenant_id: str
    #: Domain registry spec (e.g. ``"interval"``, ``"hypercube:3"``).
    domain: str = "interval"
    #: Total privacy budget of the tenant's stream.
    epsilon: float = 1.0
    #: Pruning parameter ``k`` (hot branches per level).
    pruning_k: int = 8
    #: Expected stream length the paper defaults derive from.
    stream_size: int = 4096
    #: Whether the tenant runs the continual-observation variant
    #: (state private at every stream point; snapshot-able mid-stream).
    continual: bool = False
    #: Maximum stream length continual counters must survive
    #: (defaults to ``stream_size``).
    horizon: int | None = None
    #: Seed governing the tenant's noise and hash functions.
    seed: int = 0
    #: Optional per-tenant privacy cap the service's budget registry
    #: enforces at admission (``None`` caps at exactly ``epsilon``).
    max_epsilon: float | None = None

    def __post_init__(self) -> None:
        if not _TENANT_ID_PATTERN.match(str(self.tenant_id)):
            raise ValueError(
                f"tenant id {self.tenant_id!r} is not filename-safe; use "
                "letters, digits, '.', '_' and '-' (must not start with a dot)"
            )
        if self.epsilon <= 0:
            raise ValueError(f"tenant {self.tenant_id}: epsilon must be positive, got {self.epsilon}")
        if self.pruning_k < 1:
            raise ValueError(f"tenant {self.tenant_id}: pruning_k must be >= 1, got {self.pruning_k}")
        if self.stream_size < 1:
            raise ValueError(
                f"tenant {self.tenant_id}: stream_size must be >= 1, got {self.stream_size}"
            )
        if self.horizon is not None and self.horizon < 1:
            raise ValueError(f"tenant {self.tenant_id}: horizon must be >= 1, got {self.horizon}")
        if self.horizon is not None and not self.continual:
            raise ValueError(
                f"tenant {self.tenant_id}: horizon only applies to continual tenants"
            )
        if self.max_epsilon is not None and self.max_epsilon < self.epsilon:
            raise ValueError(
                f"tenant {self.tenant_id}: epsilon {self.epsilon} exceeds the "
                f"tenant's max_epsilon cap {self.max_epsilon}"
            )
        # Fail registration, not first ingestion, on a bad domain spec.
        make_domain(self.domain)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def make_domain(self) -> Domain:
        """The tenant's :class:`~repro.domain.base.Domain` instance."""
        return make_domain(self.domain)

    def build_summarizer(self):
        """A fresh summarizer for this tenant (PrivHP or PrivHPContinual).

        Every rebuild from the same spec is deterministic -- same seed, same
        hash functions, same noise draws -- which is what makes a service
        tenant's release byte-identical to an in-process run of the same
        stream.
        """
        builder = (
            PrivHPBuilder(self.domain)
            .epsilon(self.epsilon)
            .pruning_k(self.pruning_k)
            .stream_size(self.stream_size)
            .seed(self.seed)
        )
        if self.continual:
            builder = builder.continual(horizon=self.horizon)
        return builder.build()

    # ------------------------------------------------------------------ #
    # JSON round trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serialisable form (the on-disk tenant file format)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, document: dict, tenant_id: str | None = None) -> "TenantSpec":
        """Decode a spec document; unknown keys are rejected.

        ``tenant_id`` supplies the id when the document omits it (the
        directory loader passes the file stem).
        """
        if not isinstance(document, dict):
            raise ValueError(f"a tenant spec must be a JSON object, got {type(document).__name__}")
        fields = dict(document)
        if tenant_id is not None:
            fields.setdefault("tenant_id", tenant_id)
        unknown = set(fields) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"tenant spec has unknown keys: {', '.join(sorted(unknown))}"
            )
        if "tenant_id" not in fields:
            raise ValueError("tenant spec requires a tenant_id")
        return cls(**fields)


def save_tenant_spec(spec: TenantSpec, directory: str | pathlib.Path) -> pathlib.Path:
    """Write one spec as ``<directory>/<tenant_id>.json`` and return the path.

    Example:
        >>> import tempfile
        >>> with tempfile.TemporaryDirectory() as spool:
        ...     path = save_tenant_spec(TenantSpec("acme", stream_size=64), spool)
        ...     sorted(load_tenant_specs(spool))
        ['acme']
    """
    directory = pathlib.Path(directory)
    path = directory / f"{spec.tenant_id}.json"
    path.write_text(json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n")
    return path


def load_tenant_specs(directory: str | pathlib.Path) -> dict[str, TenantSpec]:
    """Load every tenant spec in a directory, keyed by tenant id.

    Each ``*.json`` file holds either one spec object (its ``tenant_id``
    defaulting to the file stem) or a ``{"tenants": [...]}`` batch.
    Duplicate tenant ids across files are an error -- two configurations for
    one private stream is never resolvable.

    Example:
        >>> import tempfile
        >>> with tempfile.TemporaryDirectory() as spool:
        ...     _ = save_tenant_spec(TenantSpec("a1", stream_size=64), spool)
        ...     _ = save_tenant_spec(TenantSpec("a2", stream_size=64, continual=True), spool)
        ...     specs = load_tenant_specs(spool)
        >>> sorted(specs), specs["a2"].continual
        (['a1', 'a2'], True)
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        raise ValueError(f"tenant spec directory {directory} does not exist")
    specs: dict[str, TenantSpec] = {}
    for path in sorted(directory.glob("*.json")):
        try:
            document = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"{path} is not valid JSON: {error}") from error
        if isinstance(document, dict) and "tenants" in document:
            entries = document["tenants"]
            if not isinstance(entries, list):
                raise ValueError(f"{path}: 'tenants' must be a list of spec objects")
            loaded = [TenantSpec.from_dict(entry) for entry in entries]
        else:
            try:
                loaded = [TenantSpec.from_dict(document, tenant_id=path.stem)]
            except ValueError as error:
                raise ValueError(f"{path}: {error}") from error
        for spec in loaded:
            if spec.tenant_id in specs:
                raise ValueError(
                    f"duplicate tenant id {spec.tenant_id!r} (second definition in {path})"
                )
            specs[spec.tenant_id] = spec
    return specs
