"""Tenant-granular accounting: privacy budgets at admission, words at runtime.

Two ledgers keep the ingestion service honest:

* :class:`TenantBudgetRegistry` sits *on top of* the existing per-level
  :class:`repro.privacy.accountant.BudgetAccountant`: every tenant gets its
  own accountant capped at the spec's ``max_epsilon`` (or exactly its
  ``epsilon``), and an optional service-wide accountant caps the total
  epsilon admitted across all tenants.  Admission is the enforcement point:
  a tenant whose budget does not fit is rejected before its summarizer ever
  exists, and the summarizer's own internal accountant then guards the
  per-level split as before.
* :class:`MemoryLedger` tracks the words each resident summarizer holds
  (via :func:`repro.memory.accounting.measure_method`, which understands
  both one-shot and continual summarizers) plus a recency order, which is
  what the worker's LRU eviction of cold tenants to checkpoint files runs
  on.  One ledger per worker -- workers share no mutable state.
"""

from __future__ import annotations

import threading

from repro.ingest.spec import TenantSpec
from repro.privacy.accountant import BudgetAccountant, BudgetExceededError

__all__ = ["TenantBudgetRegistry", "MemoryLedger"]


class TenantBudgetRegistry:
    """Admission control and reporting for per-tenant privacy budgets.

    Example:
        >>> registry = TenantBudgetRegistry(service_budget=2.0)
        >>> registry.admit(TenantSpec("a", epsilon=1.5, stream_size=64))
        >>> registry.admit(  # doctest: +IGNORE_EXCEPTION_DETAIL
        ...     TenantSpec("b", epsilon=1.0, stream_size=64))
        Traceback (most recent call last):
        ...
        BudgetExceededError: tenant 'b': spending 1.0 exceeds remaining budget
        >>> registry.admitted(), round(registry.total_epsilon(), 3)
        (['a'], 1.5)
    """

    def __init__(self, service_budget: float | None = None) -> None:
        #: Optional cap on the summed epsilon across every admitted tenant
        #: (``None`` admits any number of tenants).
        self._service_accountant = (
            BudgetAccountant(total_budget=service_budget) if service_budget is not None else None
        )
        self._tenants: dict[str, BudgetAccountant] = {}
        self._lock = threading.Lock()

    def admit(self, spec: TenantSpec) -> None:
        """Reserve ``spec.epsilon`` for the tenant, or raise.

        Raises :class:`~repro.privacy.accountant.BudgetExceededError` when
        the tenant's epsilon exceeds its own ``max_epsilon`` cap or would
        push the service-wide total past its budget, and ``ValueError`` for
        a duplicate tenant id.  Rejection happens before any summarizer is
        built, so no private state exists for an over-budget tenant.
        """
        with self._lock:
            if spec.tenant_id in self._tenants:
                raise ValueError(f"tenant {spec.tenant_id!r} is already admitted")
            accountant = BudgetAccountant(
                total_budget=spec.max_epsilon if spec.max_epsilon is not None else spec.epsilon
            )
            label = f"tenant {spec.tenant_id!r} summarizer"
            try:
                accountant.spend(spec.epsilon, label=label)
                if self._service_accountant is not None:
                    self._service_accountant.spend(spec.epsilon, label=label)
            except BudgetExceededError as error:
                raise BudgetExceededError(f"tenant {spec.tenant_id!r}: {error}") from error
            self._tenants[spec.tenant_id] = accountant

    def admitted(self) -> list[str]:
        """Sorted ids of every admitted tenant."""
        with self._lock:
            return sorted(self._tenants)

    def total_epsilon(self) -> float:
        """Summed epsilon across all admitted tenants."""
        with self._lock:
            return float(sum(accountant.spent for accountant in self._tenants.values()))

    def remaining_epsilon(self, tenant_id: str) -> float:
        """Unspent headroom under the tenant's ``max_epsilon`` cap."""
        with self._lock:
            return self._tenants[tenant_id].remaining

    def summary(self) -> dict:
        """JSON-serialisable budget report (the ``stats()`` building block)."""
        with self._lock:
            service_remaining = (
                self._service_accountant.remaining
                if self._service_accountant is not None
                else None
            )
            return {
                "tenants": len(self._tenants),
                "total_epsilon": float(
                    sum(accountant.spent for accountant in self._tenants.values())
                ),
                "service_budget_remaining": service_remaining,
            }


class MemoryLedger:
    """Word counts plus recency for one worker's resident tenants.

    Not thread-safe by design: exactly one worker owns a ledger, the same
    way it exclusively owns its partition of tenants.

    Example:
        >>> ledger = MemoryLedger()
        >>> ledger.touch("a", words=100)
        >>> ledger.touch("b", words=200)
        >>> ledger.touch("a", words=150)
        >>> ledger.total_words
        350
        >>> ledger.eviction_order(protect="a")   # coldest first, "a" protected
        ['b']
        >>> ledger.drop("b")
        200
        >>> ledger.total_words
        150
    """

    def __init__(self) -> None:
        self._words: dict[str, int] = {}
        self._last_touch: dict[str, int] = {}
        self._clock = 0

    def touch(self, tenant_id: str, words: int) -> None:
        """Record the tenant's current word count and bump its recency."""
        self._clock += 1
        self._words[tenant_id] = int(words)
        self._last_touch[tenant_id] = self._clock

    def drop(self, tenant_id: str) -> int:
        """Forget a tenant (evicted or released); returns the words freed."""
        self._last_touch.pop(tenant_id, None)
        return self._words.pop(tenant_id, 0)

    @property
    def total_words(self) -> int:
        """Words held by every resident tenant together."""
        return int(sum(self._words.values()))

    def words_of(self, tenant_id: str) -> int:
        """Last recorded word count of one tenant (0 when not resident)."""
        return self._words.get(tenant_id, 0)

    def resident(self) -> list[str]:
        """Ids of every tenant the ledger currently tracks."""
        return list(self._words)

    def eviction_order(self, protect: str | None = None) -> list[str]:
        """Tenants coldest-first, excluding ``protect`` (the one just touched).

        The eviction loop walks this order until the worker is back under
        its word budget.
        """
        candidates = [tenant for tenant in self._words if tenant != protect]
        return sorted(candidates, key=lambda tenant: self._last_touch[tenant])
