"""Tenant-granular accounting: privacy budgets at admission, words at runtime.

Two ledgers keep the ingestion service honest:

* :class:`TenantBudgetRegistry` sits *on top of* the existing per-level
  :class:`repro.privacy.accountant.BudgetAccountant`: every tenant gets its
  own accountant capped at the spec's ``max_epsilon`` (or exactly its
  ``epsilon``), and an optional service-wide accountant caps the total
  epsilon admitted across all tenants.  Admission is the enforcement point:
  a tenant whose budget does not fit is rejected before its summarizer ever
  exists, and the summarizer's own internal accountant then guards the
  per-level split as before.
* :class:`MemoryLedger` tracks the words each resident summarizer holds
  plus a recency order, which is what the worker's eviction of cold tenants
  to checkpoint files runs on.  Accounting is *amortized*: an exact
  measurement (via :func:`repro.memory.accounting.measure_method`, which
  understands both one-shot and continual summarizers) is taken when a
  tenant first becomes resident and then only every ``measure_interval``
  touches or on eviction decisions; between exact points the ledger
  extrapolates with the per-touch word slope observed between the last two
  measurements.  One-shot summarizers have constant resident size during
  ingestion (slope 0 -- the tree only grows at release), and continual
  banks grow by O(log horizon) words per event, so the estimate stays
  within the tolerance contract asserted in the tests: between exact
  measurements the per-tenant error is bounded by ``measure_interval``
  times the change in per-touch growth rate, and it resets to zero at
  every exact point.  One ledger per worker -- workers share no mutable
  state.
"""

from __future__ import annotations

import threading

from repro.ingest.spec import TenantSpec
from repro.privacy.accountant import BudgetAccountant, BudgetExceededError

__all__ = ["TenantBudgetRegistry", "MemoryLedger"]


class TenantBudgetRegistry:
    """Admission control and reporting for per-tenant privacy budgets.

    Example:
        >>> registry = TenantBudgetRegistry(service_budget=2.0)
        >>> registry.admit(TenantSpec("a", epsilon=1.5, stream_size=64))
        >>> registry.admit(  # doctest: +IGNORE_EXCEPTION_DETAIL
        ...     TenantSpec("b", epsilon=1.0, stream_size=64))
        Traceback (most recent call last):
        ...
        BudgetExceededError: tenant 'b': spending 1.0 exceeds remaining budget
        >>> registry.admitted(), round(registry.total_epsilon(), 3)
        (['a'], 1.5)
    """

    def __init__(self, service_budget: float | None = None) -> None:
        #: Optional cap on the summed epsilon across every admitted tenant
        #: (``None`` admits any number of tenants).
        self._service_accountant = (
            BudgetAccountant(total_budget=service_budget) if service_budget is not None else None
        )
        self._tenants: dict[str, BudgetAccountant] = {}
        self._lock = threading.Lock()

    def admit(self, spec: TenantSpec) -> None:
        """Reserve ``spec.epsilon`` for the tenant, or raise.

        Raises :class:`~repro.privacy.accountant.BudgetExceededError` when
        the tenant's epsilon exceeds its own ``max_epsilon`` cap or would
        push the service-wide total past its budget, and ``ValueError`` for
        a duplicate tenant id.  Rejection happens before any summarizer is
        built, so no private state exists for an over-budget tenant.
        """
        with self._lock:
            if spec.tenant_id in self._tenants:
                raise ValueError(f"tenant {spec.tenant_id!r} is already admitted")
            accountant = BudgetAccountant(
                total_budget=spec.max_epsilon if spec.max_epsilon is not None else spec.epsilon
            )
            label = f"tenant {spec.tenant_id!r} summarizer"
            try:
                accountant.spend(spec.epsilon, label=label)
                if self._service_accountant is not None:
                    self._service_accountant.spend(spec.epsilon, label=label)
            except BudgetExceededError as error:
                raise BudgetExceededError(f"tenant {spec.tenant_id!r}: {error}") from error
            self._tenants[spec.tenant_id] = accountant

    def admitted(self) -> list[str]:
        """Sorted ids of every admitted tenant."""
        with self._lock:
            return sorted(self._tenants)

    def total_epsilon(self) -> float:
        """Summed epsilon across all admitted tenants."""
        with self._lock:
            return float(sum(accountant.spent for accountant in self._tenants.values()))

    def remaining_epsilon(self, tenant_id: str) -> float:
        """Unspent headroom under the tenant's ``max_epsilon`` cap."""
        with self._lock:
            return self._tenants[tenant_id].remaining

    def summary(self) -> dict:
        """JSON-serialisable budget report (the ``stats()`` building block)."""
        with self._lock:
            service_remaining = (
                self._service_accountant.remaining
                if self._service_accountant is not None
                else None
            )
            return {
                "tenants": len(self._tenants),
                "total_epsilon": float(
                    sum(accountant.spent for accountant in self._tenants.values())
                ),
                "service_budget_remaining": service_remaining,
            }


#: Exact re-measure cadence: one full ``measure_method`` walk per this many
#: touches of a tenant; every touch in between costs O(1).
DEFAULT_MEASURE_INTERVAL = 16


class MemoryLedger:
    """Amortized word accounting plus recency for one worker's tenants.

    Not thread-safe by design: exactly one worker owns a ledger, the same
    way it exclusively owns its partition of tenants.

    The protocol: :meth:`touch` bumps a tenant's recency and extrapolates
    its word estimate from the last observed per-touch slope, returning
    ``True`` whenever an exact measurement is due (first sighting, or every
    ``measure_interval`` touches); the caller then measures the summarizer
    and feeds the result to :meth:`record_exact`, which re-anchors the
    estimate and refreshes the slope.  ``total_words`` is maintained
    incrementally, so the budget check on the append hot path is O(1)
    instead of a sum over every resident tenant.

    Example:
        >>> ledger = MemoryLedger(measure_interval=2)
        >>> ledger.touch("a")       # unknown tenant: exact measure due
        True
        >>> ledger.record_exact("a", 100)
        >>> ledger.touch("a")       # 1 touch since anchor: estimate only
        False
        >>> ledger.touch("a")       # interval reached: exact measure due
        True
        >>> ledger.record_exact("a", 140)    # slope becomes 20 words/touch
        >>> ledger.touch("a")
        False
        >>> ledger.words_of("a"), ledger.total_words
        (160, 160)
        >>> ledger.drop("a")
        160
    """

    def __init__(self, measure_interval: int = DEFAULT_MEASURE_INTERVAL) -> None:
        if measure_interval < 1:
            raise ValueError(f"measure_interval must be >= 1, got {measure_interval}")
        self.measure_interval = int(measure_interval)
        self._words: dict[str, float] = {}
        self._exact_words: dict[str, int] = {}
        self._slope: dict[str, float] = {}
        self._touches_since: dict[str, int] = {}
        self._last_touch: dict[str, int] = {}
        self._clock = 0
        self._total = 0.0

    def _set_estimate(self, tenant_id: str, words: float) -> None:
        self._total += words - self._words.get(tenant_id, 0.0)
        self._words[tenant_id] = words

    def touch(self, tenant_id: str) -> bool:
        """Bump recency, extrapolate the estimate; True when an exact
        measurement is due from the caller (via :meth:`record_exact`)."""
        self._clock += 1
        self._last_touch[tenant_id] = self._clock
        if tenant_id not in self._exact_words:
            return True
        touches = self._touches_since[tenant_id] + 1
        self._touches_since[tenant_id] = touches
        slope = self._slope.get(tenant_id, 0.0)
        if slope:
            self._set_estimate(tenant_id, self._words[tenant_id] + slope)
        return touches >= self.measure_interval

    def record_exact(self, tenant_id: str, words: int) -> None:
        """Anchor a tenant at an exactly measured word count.

        The per-touch slope is refreshed from the delta since the previous
        anchor, so growth-rate changes are picked up within one interval.
        """
        words = int(words)
        previous = self._exact_words.get(tenant_id)
        touches = self._touches_since.get(tenant_id, 0)
        if previous is not None and touches > 0:
            self._slope[tenant_id] = max(0.0, (words - previous) / touches)
        self._exact_words[tenant_id] = words
        self._touches_since[tenant_id] = 0
        self._set_estimate(tenant_id, float(words))
        if tenant_id not in self._last_touch:
            self._clock += 1
            self._last_touch[tenant_id] = self._clock

    def drop(self, tenant_id: str) -> int:
        """Forget a tenant (evicted or released); returns the words freed."""
        self._last_touch.pop(tenant_id, None)
        self._exact_words.pop(tenant_id, None)
        self._slope.pop(tenant_id, None)
        self._touches_since.pop(tenant_id, None)
        freed = self._words.pop(tenant_id, 0.0)
        self._total -= freed
        return int(round(freed))

    @property
    def total_words(self) -> int:
        """Estimated words held by every resident tenant together (O(1))."""
        return int(round(self._total))

    def words_of(self, tenant_id: str) -> int:
        """Current word estimate of one tenant (0 when not resident)."""
        return int(round(self._words.get(tenant_id, 0.0)))

    def exact_words_of(self, tenant_id: str) -> int | None:
        """The last exactly measured word count (None before any anchor)."""
        return self._exact_words.get(tenant_id)

    def staleness_of(self, tenant_id: str) -> int:
        """Touches of *other* tenants since this one was last touched."""
        return self._clock - self._last_touch[tenant_id]

    def resident(self) -> list[str]:
        """Ids of every tenant the ledger currently tracks."""
        return list(self._words)

    def eviction_order(self, protect: str | None = None) -> list[str]:
        """Cost-aware eviction order, best candidate first.

        Candidates are ranked by ``coldness x resident words`` (descending),
        where coldness is the number of ledger touches since the tenant was
        last touched: one big cold tenant frees the budget in one eviction
        where pure LRU would churn through many small warm ones.  Ties break
        coldest-first then by tenant id, so the order is deterministic; when
        all tenants are the same size the policy degenerates to exactly LRU.
        ``protect`` (the tenant just touched) is excluded.
        """
        candidates = [tenant for tenant in self._words if tenant != protect]
        return sorted(
            candidates,
            key=lambda tenant: (
                -(self._clock - self._last_touch[tenant]) * self._words[tenant],
                self._last_touch[tenant],
                tenant,
            ),
        )
