"""Intake: append files, spool-directory loops and per-tenant rate limiting.

The service's data plane is in-process (:meth:`IngestService.append
<repro.ingest.service.IngestService.append>`); this module is the boundary
where external producers hand over data as files:

* **JSONL** -- one object per line, ``{"tenant": "acme", "values": [...]}``
  (or ``"value"`` for a single item).  One line is one append batch, so a
  producer controls its own batching -- and therefore the tenant's exact
  event sequence, which is what byte-reproducibility is defined over.
* **CSV** -- rows of ``tenant,value[,value...]``; consecutive rows of one
  tenant are coalesced into batches of at most ``batch_size``.

:func:`watch_directory` turns a directory into a spool: files are ingested
in sorted order and renamed to ``*.done`` so a crashed loop never ingests a
file twice.  :class:`RateLimiter` is a token bucket applied per tenant at
intake (smooth rate plus a burst allowance), so one hot tenant cannot starve
the worker pool -- the limiter delays the *producer side*, never the
workers.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

import numpy as np

from repro.ingest.service import IngestService

__all__ = ["RateLimiter", "iter_append_records", "ingest_file", "watch_directory"]


class RateLimiter:
    """A per-tenant token bucket: ``rate`` items/second with a burst bucket.

    Each tenant owns an independent bucket of ``burst`` tokens refilling at
    ``rate`` tokens per second; :meth:`throttle` consumes one token per item
    and returns the seconds the caller must wait for the bucket to cover
    the batch.  The clock is injectable so tests run instantly.

    Example:
        >>> now = [0.0]
        >>> limiter = RateLimiter(rate=10.0, burst=20, clock=lambda: now[0])
        >>> limiter.throttle("acme", 20)     # burst absorbs the first 20
        0.0
        >>> limiter.throttle("acme", 10)     # next 10 arrive at 10 items/s
        1.0
        >>> now[0] += 5.0
        >>> limiter.throttle("other", 5)     # buckets are per tenant
        0.0
    """

    def __init__(self, rate: float, burst: int | None = None, clock=None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive items/second, got {rate}")
        self.rate = float(rate)
        self.burst = int(burst) if burst is not None else max(1, int(rate))
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self._clock = clock if clock is not None else time.monotonic
        #: Per-tenant bucket state: (tokens, last refill time).
        self._buckets: dict[str, tuple[float, float]] = {}
        self._lock = threading.Lock()

    def throttle(self, tenant_id: str, items: int) -> float:
        """Consume ``items`` tokens; return the wait (seconds) this incurs.

        The bucket may go negative -- the deficit is the wait -- so a batch
        larger than the burst is admitted after a proportional delay rather
        than rejected.  Safe under concurrent callers: the read-modify-write
        of a bucket is atomic, so no consumed token is ever lost to a racing
        thread's stale read.
        """
        with self._lock:
            now = self._clock()
            tokens, stamp = self._buckets.get(tenant_id, (float(self.burst), now))
            tokens = min(float(self.burst), tokens + (now - stamp) * self.rate)
            tokens -= items
            self._buckets[tenant_id] = (tokens, now)
        if tokens >= 0:
            return 0.0
        return -tokens / self.rate

    def wait(self, tenant_id: str, items: int, sleep=time.sleep) -> float:
        """:meth:`throttle` then actually sleep out the returned delay."""
        delay = self.throttle(tenant_id, items)
        if delay > 0:
            sleep(delay)
        return delay


def iter_append_records(path: str | pathlib.Path, batch_size: int = 8192):
    """Yield ``(tenant_id, values_array)`` append batches from a file.

    Dispatches on suffix: ``.jsonl`` (one batch per line) or ``.csv``
    (consecutive same-tenant rows coalesced up to ``batch_size``).
    Malformed lines raise ``ValueError`` naming the file and line number.

    Example:
        >>> import tempfile, os
        >>> with tempfile.TemporaryDirectory() as spool:
        ...     path = os.path.join(spool, "day1.jsonl")
        ...     with open(path, "w") as handle:
        ...         _ = handle.write('{"tenant": "acme", "values": [0.1, 0.9]}\\n')
        ...         _ = handle.write('{"tenant": "umbrella", "value": 0.5}\\n')
        ...     [(tenant, values.tolist()) for tenant, values in iter_append_records(path)]
        [('acme', [0.1, 0.9]), ('umbrella', [0.5])]
    """
    path = pathlib.Path(path)
    suffix = path.suffix.lower()
    if suffix == ".jsonl":
        yield from _iter_jsonl(path)
    elif suffix == ".csv":
        yield from _iter_csv(path, batch_size)
    else:
        raise ValueError(
            f"unsupported append file {path}: expected a .jsonl or .csv suffix"
        )


def _iter_jsonl(path: pathlib.Path):
    with path.open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not valid JSON: {error}") from error
            if not isinstance(record, dict) or "tenant" not in record:
                raise ValueError(f"{path}:{number}: each record needs a 'tenant' key")
            if "values" in record:
                values = record["values"]
            elif "value" in record:
                values = [record["value"]]
            else:
                raise ValueError(f"{path}:{number}: each record needs 'values' or 'value'")
            yield str(record["tenant"]), np.asarray(values, dtype=float)


def _iter_csv(path: pathlib.Path, batch_size: int):
    tenant: str | None = None
    buffer: list[list[float]] = []

    def flush():
        values = np.asarray(buffer, dtype=float)
        # Single-column rows are scalar streams, not 1-d vectors.
        return tenant, values.ravel() if values.shape[1] == 1 else values

    with path.open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split(",")
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{number}: expected 'tenant,value[,value...]', got {line!r}"
                )
            row_tenant = parts[0].strip()
            try:
                row_values = [float(part) for part in parts[1:]]
            except ValueError as error:
                raise ValueError(f"{path}:{number}: non-numeric value: {error}") from error
            if tenant is not None and (row_tenant != tenant or len(buffer) >= batch_size):
                yield flush()
                buffer = []
            tenant = row_tenant
            buffer.append(row_values)
    if buffer:
        yield flush()


def ingest_file(
    service: IngestService,
    path: str | pathlib.Path,
    batch_size: int = 8192,
    limiter: RateLimiter | None = None,
) -> dict:
    """Route every append batch in a file through the service.

    Returns ``{"batches": ..., "items": ...}``.  With a ``limiter``, each
    batch is throttled against the tenant's token bucket before it is
    enqueued.  Failures surface on the service's next ``flush()``.

    Example:
        >>> import tempfile, os
        >>> from repro.ingest.spec import TenantSpec
        >>> with tempfile.TemporaryDirectory() as spool:
        ...     path = os.path.join(spool, "batch.jsonl")
        ...     with open(path, "w") as handle:
        ...         _ = handle.write('{"tenant": "acme", "values": [0.25, 0.75]}\\n')
        ...     with IngestService(workers=1) as service:
        ...         service.register(TenantSpec("acme", stream_size=16, seed=4))
        ...         counts = ingest_file(service, path)
        ...         _ = service.flush()
        >>> counts
        {'batches': 1, 'items': 2}
    """
    batches = 0
    items = 0
    for tenant_id, values in iter_append_records(path, batch_size=batch_size):
        if limiter is not None:
            limiter.wait(tenant_id, len(values))
        service.append(tenant_id, values)
        batches += 1
        items += len(values)
    return {"batches": batches, "items": items}


def watch_directory(
    service: IngestService,
    spool_dir: str | pathlib.Path,
    batch_size: int = 8192,
    limiter: RateLimiter | None = None,
    poll_interval: float = 1.0,
    once: bool = False,
    stop_event=None,
    on_file=None,
) -> dict:
    """Spool-directory intake loop: ingest ``*.jsonl`` / ``*.csv``, mark done.

    Files are processed in sorted order and renamed to ``<name>.done`` after
    a successful ingest (so a restarted loop resumes exactly where it
    stopped).  The loop polls every ``poll_interval`` seconds until
    ``stop_event`` (a :class:`threading.Event`) is set; with ``once`` it
    performs a single pass and returns.  ``on_file`` (if given) is called
    with ``(path, counts)`` after each file -- the CLI's progress hook.

    Example:
        >>> import tempfile, os
        >>> from repro.ingest.spec import TenantSpec
        >>> with tempfile.TemporaryDirectory() as spool:
        ...     with open(os.path.join(spool, "a.jsonl"), "w") as handle:
        ...         _ = handle.write('{"tenant": "acme", "values": [0.5]}\\n')
        ...     with IngestService(workers=1) as service:
        ...         service.register(TenantSpec("acme", stream_size=16, seed=4))
        ...         totals = watch_directory(service, spool, once=True)
        ...     leftover = sorted(p.name for p in pathlib.Path(spool).iterdir())
        >>> totals, leftover
        ({'files': 1, 'batches': 1, 'items': 1}, ['a.jsonl.done'])
    """
    spool_dir = pathlib.Path(spool_dir)
    if not spool_dir.is_dir():
        raise ValueError(f"spool directory {spool_dir} does not exist")
    totals = {"files": 0, "batches": 0, "items": 0}
    while True:
        pending = sorted(
            path
            for path in spool_dir.iterdir()
            if path.suffix.lower() in (".jsonl", ".csv")
        )
        for path in pending:
            counts = ingest_file(service, path, batch_size=batch_size, limiter=limiter)
            path.rename(path.with_name(path.name + ".done"))
            totals["files"] += 1
            totals["batches"] += counts["batches"]
            totals["items"] += counts["items"]
            if on_file is not None:
                on_file(path, counts)
        if once:
            return totals
        if stop_event is not None and stop_event.wait(poll_interval):
            return totals
        if stop_event is None:  # pragma: no cover - interactive loop
            time.sleep(poll_interval)
