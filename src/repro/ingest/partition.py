"""Hash-partitioned workers: each tenant is owned by exactly one thread.

The concurrency design follows the worker-partition / message-exchange style
of epidemic-simulation patch grids: the tenant space is split into fixed
hash partitions (:func:`partition_of`), each :class:`IngestWorker` thread
exclusively owns the summarizers of one partition, and *all* communication
happens through the worker's inbox queue -- appends, snapshot/release
requests and sync barriers are messages, results travel back through
per-request reply boxes.  No summarizer is ever touched by two threads, so
per-tenant processing is strictly ordered and deterministic: replaying the
same per-tenant append sequence yields byte-identical releases no matter
how many workers the service runs or what the other tenants do.

The inbox is drained in *batches*: each wakeup takes every queued message,
coalesces consecutive appends into one per-tenant plan (first-touch order,
never across a non-append message, so cross-op ordering is preserved) and
lands each tenant's run of appends with a single ``coerce_stream`` plus one
:meth:`update_segments` call -- byte-identical to applying the appends one
by one, because the segment boundaries (and with them the float summation
order and the continual event axis) are preserved.

Each worker also runs its own word-budget bookkeeping, amortized through
the :class:`repro.ingest.accounting.MemoryLedger`: exact ``measure_method``
walks happen on first residency, on snapshots, every ``measure_interval``
touches and on eviction decisions; every other touch extrapolates in O(1).
When its partition exceeds its share of the service's memory budget, the
worker evicts tenants cost-aware (coldness x resident words) by handing
the summarizer to the service's shared
:class:`repro.io.checkpoint_writer.CheckpointWriter`, which persists it in
the background.  An evicted tenant is restored transparently -- and
byte-for-byte -- on its next touch, either by reclaiming the still-pending
object from the writer or by loading the checkpoint file.
"""

from __future__ import annotations

import hashlib
import queue
import threading

import numpy as np

from repro.ingest.accounting import DEFAULT_MEASURE_INTERVAL, MemoryLedger
from repro.ingest.spec import TenantSpec
from repro.io.serialization import load_checkpoint, save_checkpoint
from repro.memory.accounting import measure_method

__all__ = ["partition_of", "IngestWorker", "ReplyBox", "AppendError"]

#: How long a caller waits on a worker reply before giving up (seconds).
DEFAULT_REPLY_TIMEOUT = 60.0


def partition_of(tenant_id: str, partitions: int) -> int:
    """The stable hash partition owning ``tenant_id``.

    Deterministic across processes and platforms (BLAKE2, not Python's
    salted ``hash``), so a restarted service routes every tenant to the same
    partition -- which is where its checkpoint files and ordering guarantees
    live.

    Example:
        >>> partition_of("acme", 8) == partition_of("acme", 8)
        True
        >>> {partition_of(f"tenant-{i}", 4) for i in range(64)} == {0, 1, 2, 3}
        True
    """
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    digest = hashlib.blake2b(str(tenant_id).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") % partitions


class AppendError(RuntimeError):
    """One or more fire-and-forget appends failed inside a worker.

    Raised by :meth:`repro.ingest.service.IngestService.flush`; the
    ``failures`` attribute lists ``(tenant_id, message)`` pairs so one bad
    tenant never masks another.

    Example:
        >>> error = AppendError([("acme", "horizon exhausted")])
        >>> error.failures
        [('acme', 'horizon exhausted')]
    """

    def __init__(self, failures: list[tuple[str, str]]) -> None:
        self.failures = list(failures)
        lines = "; ".join(f"{tenant}: {message}" for tenant, message in self.failures)
        super().__init__(f"{len(self.failures)} append(s) failed -- {lines}")


class ReplyBox:
    """A one-shot reply slot for a request message sent to a worker.

    Example:
        >>> box = ReplyBox()
        >>> box.resolve(42)
        >>> box.wait()
        42
    """

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def resolve(self, value) -> None:
        """Deliver the result and wake the waiter."""
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        """Deliver an exception; :meth:`wait` re-raises it in the caller."""
        self._error = error
        self._event.set()

    def wait(self, timeout: float = DEFAULT_REPLY_TIMEOUT):
        """Block for the reply; re-raises worker-side errors in the caller."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"no worker reply within {timeout} seconds")
        if self._error is not None:
            raise self._error
        return self._value


class _Resident:
    """A tenant currently held in memory by its worker."""

    __slots__ = ("summarizer", "domain", "announced")

    def __init__(self, summarizer, domain) -> None:
        self.summarizer = summarizer
        self.domain = domain
        #: Whether the "tenant has data" live-serving event has fired for
        #: this residency (reset by eviction so restores re-register).
        self.announced = False


class IngestWorker(threading.Thread):
    """One partition's owner: summarizers, word ledger and inbox loop.

    Constructed and driven by :class:`repro.ingest.service.IngestService`;
    nothing here is shared -- specs arrive as ``register`` messages, data as
    ``append`` messages, and results leave through :class:`ReplyBox` slots.

    Example:
        >>> import numpy as np
        >>> from repro.ingest.spec import TenantSpec
        >>> worker = IngestWorker(index=0)
        >>> worker.start()
        >>> worker.send("register", TenantSpec("demo", stream_size=64, seed=3))
        >>> worker.send("append", "demo", np.linspace(0.0, 1.0, 64))
        >>> release = worker.request("release", "demo")
        >>> release.items_processed
        64
        >>> worker.stop()
    """

    def __init__(
        self,
        index: int,
        checkpoint_dir=None,
        memory_budget_words: int | None = None,
        queue_size: int = 4096,
        on_live_event=None,
        counters: dict | None = None,
        checkpoint_format: str = "binary",
        checkpoint_writer=None,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
        measure_interval: int = DEFAULT_MEASURE_INTERVAL,
    ) -> None:
        super().__init__(name=f"ingest-worker-{index}", daemon=True)
        if checkpoint_format not in ("binary", "json"):
            raise ValueError(
                f"checkpoint_format must be 'binary' or 'json', got {checkpoint_format!r}"
            )
        if reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be positive, got {reply_timeout}")
        self.index = index
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_format = checkpoint_format
        #: Shared service-level async writer; ``None`` falls back to
        #: synchronous ``save_checkpoint`` on the worker thread.
        self._writer = checkpoint_writer
        self.reply_timeout = float(reply_timeout)
        self.memory_budget_words = memory_budget_words
        self.inbox: queue.Queue = queue.Queue(maxsize=queue_size)
        #: ``(tenant_id, kind)`` live-serving callback (kind in
        #: ``{"data", "evict", "release"}``), invoked from the worker thread.
        self._on_live_event = on_live_event or (lambda tenant, kind: None)
        #: Shared per-tenant item counters the service exposes to live
        #: handles (plain attribute writes; reads are monotonic).
        self._counters = counters if counters is not None else {}
        self._specs: dict[str, TenantSpec] = {}
        self._residents: dict[str, _Resident] = {}
        self._released: set[str] = set()
        self._ledger = MemoryLedger(measure_interval=measure_interval)
        self._failures: list[tuple[str, str]] = []
        self.evictions = 0
        self.restores = 0
        self.items_ingested = 0
        self.appends = 0
        self.exact_measures = 0

    # ------------------------------------------------------------------ #
    # message API (called from the service / caller threads)
    # ------------------------------------------------------------------ #
    def send(self, op: str, *payload) -> None:
        """Enqueue a fire-and-forget message (blocks when the inbox is full,
        which is the service's backpressure)."""
        self.inbox.put((op, None, payload))

    def request(self, op: str, *payload, timeout: float | None = None):
        """Enqueue a message carrying a :class:`ReplyBox` and wait for it."""
        box = ReplyBox()
        self.inbox.put((op, box, payload))
        return box.wait(self.reply_timeout if timeout is None else timeout)

    def stop(self, timeout: float | None = None) -> None:
        """Stop the loop after the already-queued messages and join."""
        self.inbox.put(("stop", None, ()))
        self.join(self.reply_timeout if timeout is None else timeout)

    # ------------------------------------------------------------------ #
    # worker loop (everything below runs only on the worker thread)
    # ------------------------------------------------------------------ #
    def run(self) -> None:  # pragma: no cover - exercised via the service tests
        while True:
            messages = [self.inbox.get()]
            # Drain the whole inbox in one wakeup so appends queued behind
            # each other can be coalesced per tenant.
            while True:
                try:
                    messages.append(self.inbox.get_nowait())
                except queue.Empty:
                    break
            if self._process(messages):
                break

    def _process(self, messages) -> bool:
        """Handle one drained inbox batch; True when a ``stop`` was seen.

        Consecutive append messages are folded into one per-tenant plan and
        applied (in first-touch tenant order) before any other op, so every
        message still observes exactly the state the FIFO order implies.
        """
        pending: dict[str, list] = {}

        def apply_pending() -> None:
            for tenant_id, arrays in pending.items():
                try:
                    self._apply_tenant(tenant_id, arrays)
                except BaseException as error:  # noqa: BLE001 - surfaced at flush
                    self._failures.append((tenant_id, f"{type(error).__name__}: {error}"))
            pending.clear()

        for op, box, payload in messages:
            if op == "append":
                pending.setdefault(str(payload[0]), []).append(payload[1])
                continue
            if op == "append_many":
                for tenant_id, arrays in payload[0]:
                    pending.setdefault(str(tenant_id), []).extend(arrays)
                continue
            apply_pending()
            if op == "stop":
                return True
            try:
                result = self._dispatch(op, payload)
            except BaseException as error:  # noqa: BLE001 - forwarded, not dropped
                if box is not None:
                    box.fail(error)
                else:
                    tenant = str(payload[0]) if payload else "<worker>"
                    self._failures.append((tenant, f"{type(error).__name__}: {error}"))
                continue
            if box is not None:
                box.resolve(result)
        apply_pending()
        return False

    def _dispatch(self, op: str, payload):
        if op == "register":
            return self._op_register(*payload)
        if op == "snapshot":
            return self._op_snapshot(*payload)
        if op == "release":
            return self._op_release(*payload)
        if op == "evict":
            return self._op_evict(*payload)
        if op == "sync":
            return self._stats()
        if op == "drain":
            return self._op_drain()
        if op == "audit":
            return self._op_audit()
        raise ValueError(f"unknown worker op {op!r}")

    def _checkpoint_path(self, tenant_id: str):
        if self.checkpoint_dir is None:
            return None
        suffix = "bin" if self.checkpoint_format == "binary" else "json"
        return self.checkpoint_dir / f"{tenant_id}.state.{suffix}"

    def _existing_checkpoint(self, tenant_id: str):
        """The tenant's on-disk checkpoint in *any* format, or ``None``.

        Restores try the configured format first, then the other suffix, so
        a service restarted with a different ``checkpoint_format`` still
        picks up the checkpoints its predecessor wrote (``load_checkpoint``
        autodetects the content by magic bytes either way).
        """
        if self.checkpoint_dir is None:
            return None
        for suffix in ("bin", "json") if self.checkpoint_format == "binary" else ("json", "bin"):
            path = self.checkpoint_dir / f"{tenant_id}.state.{suffix}"
            if path.exists():
                return path
        return None

    def _resident(self, tenant_id: str) -> _Resident:
        """The tenant's in-memory state, restoring or building it lazily."""
        state = self._residents.get(tenant_id)
        if state is not None:
            return state
        spec = self._specs.get(tenant_id)
        if spec is None:
            raise KeyError(f"tenant {tenant_id!r} is not registered with this worker")
        if tenant_id in self._released:
            raise RuntimeError(
                f"tenant {tenant_id!r} has been released; its stream is sealed"
            )
        summarizer = None
        if self._writer is not None:
            # A pending (or in-flight) eviction write holds the newest state;
            # reclaiming it skips both the write and the disk round trip.
            summarizer = self._writer.take_back(tenant_id, timeout=self.reply_timeout)
            if summarizer is not None:
                self.restores += 1
        if summarizer is None:
            path = self._existing_checkpoint(tenant_id)
            if path is not None:
                summarizer = load_checkpoint(path)
                self.restores += 1
            else:
                summarizer = spec.build_summarizer()
        state = _Resident(summarizer, spec.make_domain())
        self._residents[tenant_id] = state
        self._measure_exact(tenant_id, state)
        return state

    def _measure_exact(self, tenant_id: str, state: _Resident) -> None:
        self.exact_measures += 1
        self._ledger.record_exact(tenant_id, measure_method(state.summarizer).total_words)

    def _maybe_announce(self, tenant_id: str, state: _Resident) -> None:
        if state.announced or state.summarizer.items_processed == 0:
            return
        state.announced = True
        if self._specs[tenant_id].continual:
            self._on_live_event(tenant_id, "data")

    def _op_register(self, spec: TenantSpec) -> None:
        # Registration only stores the spec -- the summarizer is built on
        # first touch, so registering thousands of tenants is O(1) each.
        self._specs[spec.tenant_id] = spec

    def _apply_tenant(self, tenant_id: str, arrays) -> int:
        """Land one drained run of appends for a tenant in a single pass.

        The segment structure of the original ``append`` calls is preserved
        (each array is one segment), so the summarizer state -- float
        summation order, continual event axis -- is byte-identical to the
        uncoalesced path; only the per-batch fixed costs (message, coerce,
        locate, measure) are amortized across the run.
        """
        state = self._resident(tenant_id)
        segments = [np.asarray(values) for values in arrays]
        applied_before = int(state.summarizer.items_processed)
        try:
            if len(segments) == 1:
                stream = state.domain.coerce_stream(segments[0])
                state.summarizer.update_batch(stream)
            else:
                # coerce_stream is elementwise, so coercing the concatenation
                # equals concatenating the coerced segments.
                stream = state.domain.coerce_stream(np.concatenate(segments))
                state.summarizer.update_segments(
                    stream, [len(segment) for segment in segments]
                )
            self.items_ingested += len(stream)
            self.appends += len(segments)
        except BaseException:
            landed = int(state.summarizer.items_processed) - applied_before
            if landed or len(segments) == 1:
                # Part of the run is already in (only possible between
                # continual segments); replaying would double-apply, so
                # surface the whole run as one failure.
                self.items_ingested += landed
                raise
            # Nothing landed (coercion/concatenation/location failed up
            # front): replay segment by segment so the good batches go
            # through exactly as they would have uncoalesced and only the
            # bad ones surface at flush().
            for segment in segments:
                try:
                    stream = state.domain.coerce_stream(segment)
                    state.summarizer.update_batch(stream)
                    self.items_ingested += len(stream)
                    self.appends += 1
                except BaseException as error:  # noqa: BLE001 - surfaced at flush
                    self._failures.append((tenant_id, f"{type(error).__name__}: {error}"))
        items = int(state.summarizer.items_processed)
        counter = self._counters.get(tenant_id)
        if counter is not None:
            counter.value = items
        if self._ledger.touch(tenant_id):
            self._measure_exact(tenant_id, state)
        self._maybe_announce(tenant_id, state)
        self._enforce_memory_budget(protect=tenant_id)
        return items

    def _op_snapshot(self, tenant_id: str, sampling_seed=None):
        state = self._resident(tenant_id)
        if not hasattr(state.summarizer, "snapshot"):
            raise ValueError(
                f"tenant {tenant_id!r} is a one-shot summarizer with no "
                "mid-stream snapshot; release() it instead (or register it "
                "as continual)"
            )
        self._ledger.touch(tenant_id)
        self._measure_exact(tenant_id, state)
        return state.summarizer.snapshot(sampling_seed=sampling_seed)

    def _op_release(self, tenant_id: str):
        state = self._resident(tenant_id)
        release = state.summarizer.release()
        self._released.add(tenant_id)
        del self._residents[tenant_id]
        self._ledger.drop(tenant_id)
        if self.checkpoint_dir is not None:
            # A stale checkpoint would resurrect the sealed stream on the
            # next touch; remove it (in either format) with the release.
            for suffix in ("bin", "json"):
                (self.checkpoint_dir / f"{tenant_id}.state.{suffix}").unlink(missing_ok=True)
        if self._specs[tenant_id].continual:
            self._on_live_event(tenant_id, "release")
        return release

    def _op_evict(self, tenant_id: str) -> bool:
        if tenant_id not in self._specs:
            raise KeyError(f"tenant {tenant_id!r} is not registered with this worker")
        if tenant_id not in self._residents:
            return False
        self._evict(tenant_id)
        return True

    def _op_drain(self) -> dict:
        """Checkpoint every resident tenant (service shutdown) and report."""
        if self.checkpoint_dir is not None:
            for tenant_id in list(self._residents):
                self._evict(tenant_id)
        return self._stats()

    def _evict(self, tenant_id: str) -> None:
        path = self._checkpoint_path(tenant_id)
        if path is None:
            raise RuntimeError(
                "evicting a tenant requires a checkpoint directory; construct "
                "the service with checkpoint_dir=..."
            )
        state = self._residents.pop(tenant_id)
        if self._writer is not None:
            # Hand the summarizer to the background writer and return; the
            # worker drops its reference, so the writer is the sole owner
            # until the write lands or the tenant is restored via take_back.
            self._writer.submit(
                tenant_id, state.summarizer, path, format=self.checkpoint_format
            )
        else:
            save_checkpoint(state.summarizer, path, format=self.checkpoint_format)
        self._ledger.drop(tenant_id)
        self.evictions += 1
        if self._specs[tenant_id].continual:
            self._on_live_event(tenant_id, "evict")

    def _enforce_memory_budget(self, protect: str) -> None:
        budget = self.memory_budget_words
        if budget is None or self._ledger.total_words <= budget:
            return
        for tenant_id in self._ledger.eviction_order(protect=protect):
            if self._ledger.total_words <= budget:
                return
            # Eviction decisions run on exact numbers: re-anchor the
            # candidate before evicting so an over-estimate alone never
            # pushes a tenant out.
            state = self._residents.get(tenant_id)
            if state is not None:
                self._measure_exact(tenant_id, state)
                if self._ledger.total_words <= budget:
                    return
            self._evict(tenant_id)

    def _op_audit(self) -> list:
        """Ledger-estimate vs exact words per resident tenant (diagnostics).

        Returns ``(tenant_id, estimated, exact)`` rows *before* re-anchoring
        the ledger at the exact values, so callers (and the tolerance tests)
        observe the drift the amortization actually produced.
        """
        rows = []
        for tenant_id, state in self._residents.items():
            estimated = self._ledger.words_of(tenant_id)
            exact = measure_method(state.summarizer).total_words
            rows.append((tenant_id, estimated, int(exact)))
            self._ledger.record_exact(tenant_id, exact)
        return rows

    def _stats(self) -> dict:
        failures, self._failures = self._failures, []
        return {
            "partition": self.index,
            "registered": len(self._specs),
            "resident": len(self._residents),
            "released": len(self._released),
            "memory_words": self._ledger.total_words,
            "evictions": self.evictions,
            "restores": self.restores,
            "items_ingested": self.items_ingested,
            "appends": self.appends,
            "exact_measures": self.exact_measures,
            "failures": failures,
        }
