"""``IngestService``: one long-running layer owning thousands of private streams.

The service is the multi-tenant front of the fit side.  Each registered
:class:`~repro.ingest.spec.TenantSpec` names one private stream; appends are
routed by the tenant's stable hash partition (:func:`~repro.ingest.partition.partition_of`)
to the one :class:`~repro.ingest.partition.IngestWorker` thread that owns
it, so every tenant's summarizer is touched by exactly one thread and its
event order -- hence its noise draws, hence its release bytes -- is
identical to an in-process run of the same batches.

What the service adds on top of the workers:

* **admission accounting** -- every tenant passes the
  :class:`~repro.ingest.accounting.TenantBudgetRegistry` before a
  summarizer exists, enforcing per-tenant ``max_epsilon`` caps and an
  optional service-wide epsilon budget on top of each summarizer's own
  per-level accountant;
* **bounded memory** -- a service-wide word budget is split evenly across
  workers, each evicting its least-recently-touched tenants to checkpoint
  files (restored transparently and byte-identically on next touch);
* **live serving** -- given a :class:`~repro.serve.store.ReleaseStore`,
  every *continual* tenant is registered for live snapshot serving the
  moment it has data, unregistered on eviction or release (a dead
  summarizer can never be snapshotted through HTTP), and its final release
  is added to the store as a static entry.

Example:
    >>> import numpy as np
    >>> from repro.ingest.spec import TenantSpec
    >>> with IngestService(workers=2) as service:
    ...     service.register(TenantSpec("acme", stream_size=64, seed=1))
    ...     service.append("acme", np.linspace(0.0, 1.0, 64))
    ...     release = service.release("acme")
    >>> release.items_processed
    64
"""

from __future__ import annotations

import pathlib
import threading

from repro.ingest.partition import AppendError, IngestWorker, partition_of
from repro.ingest.accounting import TenantBudgetRegistry
from repro.ingest.spec import TenantSpec

__all__ = ["IngestService", "LiveTenantHandle"]


class _ItemCounter:
    """A monotonic per-tenant item count shared worker -> service."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class LiveTenantHandle:
    """The live-serving face of one tenant: what a ReleaseStore snapshots.

    Satisfies the :meth:`~repro.serve.store.ReleaseStore.register_live`
    contract (``snapshot()`` + ``items_processed``) by routing through the
    service, so serving threads never touch a summarizer directly -- the
    owning worker takes the snapshot between appends, under the tenant's
    strict per-partition ordering.

    Example:
        >>> import numpy as np
        >>> from repro.ingest.spec import TenantSpec
        >>> with IngestService(workers=1) as service:
        ...     service.register(TenantSpec("live", stream_size=64, seed=2,
        ...                                 continual=True))
        ...     service.append("live", np.linspace(0.0, 1.0, 32))
        ...     _ = service.flush()
        ...     handle = LiveTenantHandle(service, "live")
        ...     handle.items_processed, handle.snapshot().items_processed
        (32, 32)
    """

    def __init__(self, service: "IngestService", tenant_id: str) -> None:
        self._service = service
        self._tenant_id = tenant_id

    @property
    def items_processed(self) -> int:
        """Items the owning worker has fully processed for this tenant."""
        return self._service.items_processed(self._tenant_id)

    def snapshot(self, sampling_seed: int | None = None):
        """A Release of the tenant's current state (worker-serialised)."""
        return self._service.snapshot(self._tenant_id, sampling_seed=sampling_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"LiveTenantHandle(tenant_id={self._tenant_id!r})"


class IngestService:
    """Multi-tenant ingestion: register specs, append batches, release.

    Parameters
    ----------
    specs:
        Optional iterable (or id-keyed mapping) of tenant specs registered
        at construction.
    workers:
        Worker threads; the tenant space is hash-partitioned across them
        and each partition is owned exclusively by one worker.
    checkpoint_dir:
        Directory for evicted-tenant state files (required when a memory
        budget is set; created if missing).
    memory_budget_words:
        Service-wide bound on resident summarizer words, split evenly
        across workers; cold tenants are evicted to ``checkpoint_dir`` and
        restored byte-identically on their next touch.
    checkpoint_format:
        On-disk format for eviction checkpoints: ``"binary"`` (the default
        -- the raw-array envelope of :mod:`repro.io.binary`, which is what
        makes high-frequency eviction affordable) or ``"json"``.  Restores
        autodetect the format, so either setting reads both.
    store:
        Optional :class:`repro.serve.store.ReleaseStore`; continual tenants
        are served live from the moment they have data.
    service_epsilon_budget:
        Optional cap on the summed epsilon across every admitted tenant.
    queue_size:
        Inbox size per worker; a full inbox blocks ``append`` (backpressure).

    Example:
        >>> import numpy as np
        >>> from repro.ingest.spec import TenantSpec
        >>> with IngestService(workers=2) as service:
        ...     for name in ("t1", "t2", "t3"):
        ...         service.register(TenantSpec(name, stream_size=32, seed=5))
        ...     for name in ("t1", "t2", "t3"):
        ...         service.append(name, np.linspace(0.0, 1.0, 32))
        ...     stats = service.stats()
        >>> stats["tenants"], stats["items_ingested"]
        (3, 96)
    """

    def __init__(
        self,
        specs=None,
        *,
        workers: int = 4,
        checkpoint_dir: str | pathlib.Path | None = None,
        memory_budget_words: int | None = None,
        store=None,
        service_epsilon_budget: float | None = None,
        queue_size: int = 4096,
        checkpoint_format: str = "binary",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if checkpoint_format not in ("binary", "json"):
            raise ValueError(
                f"checkpoint_format must be 'binary' or 'json', got {checkpoint_format!r}"
            )
        if memory_budget_words is not None and memory_budget_words < 1:
            raise ValueError(
                f"memory_budget_words must be >= 1, got {memory_budget_words}"
            )
        if memory_budget_words is not None and checkpoint_dir is None:
            raise ValueError(
                "a memory budget needs a checkpoint_dir to evict cold tenants to"
            )
        self.checkpoint_dir = (
            pathlib.Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.store = store
        self.budget_registry = TenantBudgetRegistry(service_budget=service_epsilon_budget)
        self._specs: dict[str, TenantSpec] = {}
        self._counters: dict[str, _ItemCounter] = {}
        self._lock = threading.Lock()
        self._closed = False
        per_worker_budget = (
            None if memory_budget_words is None else max(1, memory_budget_words // workers)
        )
        self._workers = [
            IngestWorker(
                index=index,
                checkpoint_dir=self.checkpoint_dir,
                memory_budget_words=per_worker_budget,
                queue_size=queue_size,
                on_live_event=self._on_live_event,
                counters=self._counters,
                checkpoint_format=checkpoint_format,
            )
            for index in range(workers)
        ]
        for worker in self._workers:
            worker.start()
        if specs is not None:
            entries = specs.values() if hasattr(specs, "values") else specs
            for spec in entries:
                self.register(spec)

    # ------------------------------------------------------------------ #
    # tenant lifecycle
    # ------------------------------------------------------------------ #
    def _worker_for(self, tenant_id: str) -> IngestWorker:
        return self._workers[partition_of(tenant_id, len(self._workers))]

    def _require_tenant(self, tenant_id: str) -> TenantSpec:
        spec = self._specs.get(tenant_id)
        if spec is None:
            raise KeyError(
                f"unknown tenant {tenant_id!r}; register a TenantSpec for it first"
            )
        return spec

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the ingest service has been closed")

    def register(self, spec: TenantSpec) -> None:
        """Admit a tenant: budget check, then hand the spec to its worker.

        Raises :class:`repro.privacy.accountant.BudgetExceededError` when
        the tenant does not fit its own or the service's privacy budget and
        ``ValueError`` on duplicate ids.  Registration is O(1) per tenant --
        the summarizer is built lazily on first touch -- so thousands of
        tenants register cheaply.
        """
        self._check_open()
        with self._lock:
            if spec.tenant_id in self._specs:
                raise ValueError(f"tenant {spec.tenant_id!r} is already registered")
            self.budget_registry.admit(spec)
            self._specs[spec.tenant_id] = spec
            self._counters[spec.tenant_id] = _ItemCounter()
        self._worker_for(spec.tenant_id).send("register", spec)

    def tenants(self) -> list[str]:
        """Sorted ids of every registered tenant."""
        with self._lock:
            return sorted(self._specs)

    def spec_of(self, tenant_id: str) -> TenantSpec:
        """The spec a tenant was registered with."""
        return self._require_tenant(tenant_id)

    def items_processed(self, tenant_id: str) -> int:
        """Items the owning worker has fully processed for the tenant."""
        self._require_tenant(tenant_id)
        return int(self._counters[tenant_id].value)

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #
    def append(self, tenant_id: str, values) -> None:
        """Route one batch of stream items to the tenant's worker.

        Fire-and-forget: the call returns once the batch is enqueued (it
        blocks only when the worker's inbox is full).  Per-tenant ordering
        is the caller's append order; failures (horizon exhausted, bad
        values) surface on the next :meth:`flush`.
        """
        self._check_open()
        self._require_tenant(tenant_id)
        self._worker_for(tenant_id).send("append", tenant_id, values)

    def flush(self, raise_on_failure: bool = True) -> dict:
        """Wait until every queued message is processed; surface failures.

        Returns the aggregated worker stats (same shape as :meth:`stats`).
        With ``raise_on_failure`` (the default), any append that failed
        since the last flush raises an
        :class:`~repro.ingest.partition.AppendError` listing every
        ``(tenant, message)`` pair.
        """
        self._check_open()
        rows = [worker.request("sync") for worker in self._workers]
        stats = self._combine(rows)
        if raise_on_failure and stats["failures"]:
            raise AppendError(stats["failures"])
        return stats

    def snapshot(self, tenant_id: str, sampling_seed: int | None = None):
        """A mid-stream Release of a continual tenant (post-processing only).

        Serialised through the owning worker, so the snapshot sits at a
        well-defined point of the tenant's append order.  Evicted tenants
        are restored transparently first.
        """
        self._check_open()
        self._require_tenant(tenant_id)
        return self._worker_for(tenant_id).request("snapshot", tenant_id, sampling_seed)

    def release(self, tenant_id: str):
        """Seal a tenant's stream and return its final Release.

        The tenant's checkpoint file (if any) is removed with the release
        -- the stream is over -- and, when the service fronts a store, the
        live entry is replaced by the release as a static entry, so the
        tenant stays queryable over HTTP after its stream ends.
        """
        self._check_open()
        self._require_tenant(tenant_id)
        release = self._worker_for(tenant_id).request("release", tenant_id)
        if self.store is not None:
            self.store.add(tenant_id, release)
        return release

    def evict(self, tenant_id: str) -> bool:
        """Checkpoint a tenant to disk and drop it from memory now.

        Returns whether the tenant was resident.  The next touch restores
        it byte-identically; until then a live continual tenant is
        unregistered from the store (querying it over HTTP is a 404).
        """
        self._check_open()
        self._require_tenant(tenant_id)
        return bool(self._worker_for(tenant_id).request("evict", tenant_id))

    # ------------------------------------------------------------------ #
    # live serving integration
    # ------------------------------------------------------------------ #
    def _on_live_event(self, tenant_id: str, kind: str) -> None:
        """Worker-thread callback maintaining the store's live entries."""
        if self.store is None:
            return
        if kind == "data":
            self.store.register_live(tenant_id, LiveTenantHandle(self, tenant_id))
        elif kind in ("evict", "release"):
            self.store.unregister_live(tenant_id)

    # ------------------------------------------------------------------ #
    # stats / shutdown
    # ------------------------------------------------------------------ #
    @staticmethod
    def _combine(rows: list[dict]) -> dict:
        combined = {
            "workers": len(rows),
            "resident": sum(row["resident"] for row in rows),
            "released": sum(row["released"] for row in rows),
            "memory_words": sum(row["memory_words"] for row in rows),
            "evictions": sum(row["evictions"] for row in rows),
            "restores": sum(row["restores"] for row in rows),
            "items_ingested": sum(row["items_ingested"] for row in rows),
            "appends": sum(row["appends"] for row in rows),
            "failures": [failure for row in rows for failure in row["failures"]],
        }
        return combined

    def stats(self) -> dict:
        """Aggregated service statistics (flushes the workers first).

        Includes the privacy-budget summary from the registry, so the row
        reports tenants, residency, words, evictions/restores, items and
        total admitted epsilon in one place.
        """
        stats = self.flush(raise_on_failure=False)
        stats["tenants"] = len(self._specs)
        stats["budget"] = self.budget_registry.summary()
        return stats

    def close(self) -> dict:
        """Drain, checkpoint every resident tenant, and stop the workers.

        Idempotent.  Live store entries are unregistered (the service can
        no longer answer for them); released tenants stay as the static
        entries :meth:`release` added.  Returns the final stats row.
        """
        if self._closed:
            return {"workers": 0, "closed": True}
        rows = [worker.request("drain") for worker in self._workers]
        self._closed = True
        for worker in self._workers:
            worker.stop()
        if self.store is not None:
            for tenant_id in list(self._specs):
                self.store.unregister_live(tenant_id)
        stats = self._combine(rows)
        stats["tenants"] = len(self._specs)
        stats["budget"] = self.budget_registry.summary()
        return stats

    def __enter__(self) -> "IngestService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"IngestService(tenants={len(self._specs)}, workers={len(self._workers)}, "
            f"memory_budget={self.checkpoint_dir is not None})"
        )
