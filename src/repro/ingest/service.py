"""``IngestService``: one long-running layer owning thousands of private streams.

The service is the multi-tenant front of the fit side.  Each registered
:class:`~repro.ingest.spec.TenantSpec` names one private stream; appends are
routed by the tenant's stable hash partition (:func:`~repro.ingest.partition.partition_of`)
to the one :class:`~repro.ingest.partition.IngestWorker` thread that owns
it, so every tenant's summarizer is touched by exactly one thread and its
event order -- hence its noise draws, hence its release bytes -- is
identical to an in-process run of the same batches.

What the service adds on top of the workers:

* **append coalescing** -- :meth:`IngestService.append` stages batches in
  per-worker buffers and ships one ``append_many`` inbox message carrying
  many tenants' arrays once the buffer exceeds ``staging_items`` /
  ``staging_bytes`` (or when the background flusher's ``flush_interval``
  timer fires, or when any synchronising call -- ``flush``, ``release``,
  ``snapshot``, ``evict``, ``stats``, ``close`` -- needs the staged data
  applied first).  Batches keep their identity end to end: each original
  append is one segment of the shipped message, so the owning worker lands
  them with the segment boundaries -- and therefore the float summation
  order and the continual event axis -- intact, and releases stay
  byte-identical to the uncoalesced path;
* **admission accounting** -- every tenant passes the
  :class:`~repro.ingest.accounting.TenantBudgetRegistry` before a
  summarizer exists, enforcing per-tenant ``max_epsilon`` caps and an
  optional service-wide epsilon budget on top of each summarizer's own
  per-level accountant;
* **bounded memory** -- a service-wide word budget is split evenly across
  workers, each evicting its coldest-by-cost tenants (coldness x resident
  words) to checkpoint files through a shared asynchronous
  :class:`~repro.io.checkpoint_writer.CheckpointWriter` (restored
  transparently and byte-identically on next touch);
* **live serving** -- given a :class:`~repro.serve.store.ReleaseStore`,
  every *continual* tenant is registered for live snapshot serving the
  moment it has data, unregistered on eviction or release (a dead
  summarizer can never be snapshotted through HTTP), and its final release
  is added to the store as a static entry.

Example:
    >>> import numpy as np
    >>> from repro.ingest.spec import TenantSpec
    >>> with IngestService(workers=2) as service:
    ...     service.register(TenantSpec("acme", stream_size=64, seed=1))
    ...     service.append("acme", np.linspace(0.0, 1.0, 64))
    ...     release = service.release("acme")
    >>> release.items_processed
    64
"""

from __future__ import annotations

import pathlib
import threading

import numpy as np

from repro.ingest.accounting import DEFAULT_MEASURE_INTERVAL, TenantBudgetRegistry
from repro.ingest.partition import (
    DEFAULT_REPLY_TIMEOUT,
    AppendError,
    IngestWorker,
    partition_of,
)
from repro.ingest.spec import TenantSpec
from repro.io.checkpoint_writer import CheckpointWriter

__all__ = ["IngestService", "LiveTenantHandle"]


class _ItemCounter:
    """A monotonic per-tenant item count shared worker -> service."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


class _StagingBuffer:
    """Per-worker append staging: batches coalesce here before shipping.

    Guarded by its own lock so appenders targeting different workers never
    contend; per-tenant batch lists keep insertion order, which is exactly
    the per-tenant append order the determinism contract preserves.
    """

    __slots__ = ("lock", "batches", "items", "nbytes")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.batches: dict[str, list] = {}
        self.items = 0
        self.nbytes = 0


class LiveTenantHandle:
    """The live-serving face of one tenant: what a ReleaseStore snapshots.

    Satisfies the :meth:`~repro.serve.store.ReleaseStore.register_live`
    contract (``snapshot()`` + ``items_processed``) by routing through the
    service, so serving threads never touch a summarizer directly -- the
    owning worker takes the snapshot between appends, under the tenant's
    strict per-partition ordering.

    Example:
        >>> import numpy as np
        >>> from repro.ingest.spec import TenantSpec
        >>> with IngestService(workers=1) as service:
        ...     service.register(TenantSpec("live", stream_size=64, seed=2,
        ...                                 continual=True))
        ...     service.append("live", np.linspace(0.0, 1.0, 32))
        ...     _ = service.flush()
        ...     handle = LiveTenantHandle(service, "live")
        ...     handle.items_processed, handle.snapshot().items_processed
        (32, 32)
    """

    def __init__(self, service: "IngestService", tenant_id: str) -> None:
        self._service = service
        self._tenant_id = tenant_id

    @property
    def items_processed(self) -> int:
        """Items the owning worker has fully processed for this tenant."""
        return self._service.items_processed(self._tenant_id)

    def snapshot(self, sampling_seed: int | None = None):
        """A Release of the tenant's current state (worker-serialised)."""
        return self._service.snapshot(self._tenant_id, sampling_seed=sampling_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"LiveTenantHandle(tenant_id={self._tenant_id!r})"


class IngestService:
    """Multi-tenant ingestion: register specs, append batches, release.

    Parameters
    ----------
    specs:
        Optional iterable (or id-keyed mapping) of tenant specs registered
        at construction.
    workers:
        Worker threads; the tenant space is hash-partitioned across them
        and each partition is owned exclusively by one worker.
    checkpoint_dir:
        Directory for evicted-tenant state files (required when a memory
        budget is set; created if missing).
    memory_budget_words:
        Service-wide bound on resident summarizer words, split evenly
        across workers; cold tenants are evicted to ``checkpoint_dir`` and
        restored byte-identically on their next touch.
    checkpoint_format:
        On-disk format for eviction checkpoints: ``"binary"`` (the default
        -- the raw-array envelope of :mod:`repro.io.binary`, which is what
        makes high-frequency eviction affordable) or ``"json"``.  Restores
        autodetect the format, so either setting reads both.
    store:
        Optional :class:`repro.serve.store.ReleaseStore`; continual tenants
        are served live from the moment they have data.
    service_epsilon_budget:
        Optional cap on the summed epsilon across every admitted tenant.
    queue_size:
        Inbox size per worker; a full inbox blocks the staged-batch shipping
        inside ``append`` (backpressure).
    staging_items / staging_bytes:
        Per-worker staging bounds: once a worker's staged batches exceed
        either, ``append`` ships them as one coalesced inbox message.
    flush_interval:
        Seconds between background ships of whatever is staged (bounds the
        latency of a trickling tenant; ``None`` disables the timer and
        leaves shipping to the bounds and the synchronising calls).
    reply_timeout:
        Seconds callers wait for a worker reply (``flush``, ``release``,
        ...) before raising ``TimeoutError``; a deep coalesced queue under
        heavy load can legitimately need more than the default 60 s.
    measure_interval:
        Exact memory re-measure cadence of the amortized accounting: one
        full ``measure_method`` walk per tenant per this many touches
        (plus always on first residency, snapshots and eviction decisions).

    Example:
        >>> import numpy as np
        >>> from repro.ingest.spec import TenantSpec
        >>> with IngestService(workers=2) as service:
        ...     for name in ("t1", "t2", "t3"):
        ...         service.register(TenantSpec(name, stream_size=32, seed=5))
        ...     for name in ("t1", "t2", "t3"):
        ...         service.append(name, np.linspace(0.0, 1.0, 32))
        ...     stats = service.stats()
        >>> stats["tenants"], stats["items_ingested"]
        (3, 96)
    """

    def __init__(
        self,
        specs=None,
        *,
        workers: int = 4,
        checkpoint_dir: str | pathlib.Path | None = None,
        memory_budget_words: int | None = None,
        store=None,
        service_epsilon_budget: float | None = None,
        queue_size: int = 4096,
        checkpoint_format: str = "binary",
        staging_items: int = 2048,
        staging_bytes: int = 1 << 20,
        flush_interval: float | None = 0.05,
        reply_timeout: float = DEFAULT_REPLY_TIMEOUT,
        measure_interval: int = DEFAULT_MEASURE_INTERVAL,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if checkpoint_format not in ("binary", "json"):
            raise ValueError(
                f"checkpoint_format must be 'binary' or 'json', got {checkpoint_format!r}"
            )
        if memory_budget_words is not None and memory_budget_words < 1:
            raise ValueError(
                f"memory_budget_words must be >= 1, got {memory_budget_words}"
            )
        if memory_budget_words is not None and checkpoint_dir is None:
            raise ValueError(
                "a memory budget needs a checkpoint_dir to evict cold tenants to"
            )
        if staging_items < 1:
            raise ValueError(f"staging_items must be >= 1, got {staging_items}")
        if staging_bytes < 1:
            raise ValueError(f"staging_bytes must be >= 1, got {staging_bytes}")
        if flush_interval is not None and flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be positive (or None to disable), got {flush_interval}"
            )
        if reply_timeout <= 0:
            raise ValueError(f"reply_timeout must be positive, got {reply_timeout}")
        self.checkpoint_dir = (
            pathlib.Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.store = store
        self.budget_registry = TenantBudgetRegistry(service_budget=service_epsilon_budget)
        self.staging_items = int(staging_items)
        self.staging_bytes = int(staging_bytes)
        self.flush_interval = flush_interval
        self.reply_timeout = float(reply_timeout)
        self._specs: dict[str, TenantSpec] = {}
        self._counters: dict[str, _ItemCounter] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._writer = (
            CheckpointWriter() if self.checkpoint_dir is not None else None
        )
        per_worker_budget = (
            None if memory_budget_words is None else max(1, memory_budget_words // workers)
        )
        self._workers = [
            IngestWorker(
                index=index,
                checkpoint_dir=self.checkpoint_dir,
                memory_budget_words=per_worker_budget,
                queue_size=queue_size,
                on_live_event=self._on_live_event,
                counters=self._counters,
                checkpoint_format=checkpoint_format,
                checkpoint_writer=self._writer,
                reply_timeout=self.reply_timeout,
                measure_interval=measure_interval,
            )
            for index in range(workers)
        ]
        self._stages = [_StagingBuffer() for _ in self._workers]
        for worker in self._workers:
            worker.start()
        self._flusher_stop = threading.Event()
        self._flusher = None
        if self.flush_interval is not None:
            self._flusher = threading.Thread(
                target=self._flush_loop, name="ingest-flusher", daemon=True
            )
            self._flusher.start()
        if specs is not None:
            entries = specs.values() if hasattr(specs, "values") else specs
            for spec in entries:
                self.register(spec)

    # ------------------------------------------------------------------ #
    # tenant lifecycle
    # ------------------------------------------------------------------ #
    def _worker_for(self, tenant_id: str) -> IngestWorker:
        return self._workers[partition_of(tenant_id, len(self._workers))]

    def _require_tenant(self, tenant_id: str) -> TenantSpec:
        spec = self._specs.get(tenant_id)
        if spec is None:
            raise KeyError(
                f"unknown tenant {tenant_id!r}; register a TenantSpec for it first"
            )
        return spec

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("the ingest service has been closed")

    def register(self, spec: TenantSpec) -> None:
        """Admit a tenant: budget check, then hand the spec to its worker.

        Raises :class:`repro.privacy.accountant.BudgetExceededError` when
        the tenant does not fit its own or the service's privacy budget and
        ``ValueError`` on duplicate ids.  Registration is O(1) per tenant --
        the summarizer is built lazily on first touch -- so thousands of
        tenants register cheaply.
        """
        self._check_open()
        with self._lock:
            if spec.tenant_id in self._specs:
                raise ValueError(f"tenant {spec.tenant_id!r} is already registered")
            self.budget_registry.admit(spec)
            self._specs[spec.tenant_id] = spec
            self._counters[spec.tenant_id] = _ItemCounter()
        self._worker_for(spec.tenant_id).send("register", spec)

    def tenants(self) -> list[str]:
        """Sorted ids of every registered tenant."""
        with self._lock:
            return sorted(self._specs)

    def spec_of(self, tenant_id: str) -> TenantSpec:
        """The spec a tenant was registered with."""
        return self._require_tenant(tenant_id)

    def items_processed(self, tenant_id: str) -> int:
        """Items the owning worker has fully processed for the tenant."""
        self._require_tenant(tenant_id)
        return int(self._counters[tenant_id].value)

    # ------------------------------------------------------------------ #
    # data path
    # ------------------------------------------------------------------ #
    def append(self, tenant_id: str, values) -> None:
        """Stage one batch of stream items for the tenant's worker.

        Fire-and-forget: the batch lands in the worker's staging buffer and
        ships -- coalesced with other tenants' batches into one inbox
        message -- once the buffer exceeds ``staging_items`` or
        ``staging_bytes`` (the call blocks only when that ship hits a full
        inbox, which is the backpressure).  Whatever stays staged is shipped
        by the ``flush_interval`` timer or the next synchronising call.
        Per-tenant ordering is the caller's append order; failures (horizon
        exhausted, bad values) surface on the next :meth:`flush`.
        """
        self._check_open()
        self._require_tenant(tenant_id)
        batch = np.asarray(values)
        index = partition_of(tenant_id, len(self._workers))
        stage = self._stages[index]
        with stage.lock:
            stage.batches.setdefault(tenant_id, []).append(batch)
            stage.items += int(batch.shape[0]) if batch.ndim else 1
            stage.nbytes += int(batch.nbytes)
            if stage.items >= self.staging_items or stage.nbytes >= self.staging_bytes:
                self._ship_locked(index, stage)

    def _ship_locked(self, index: int, stage: _StagingBuffer) -> None:
        """Ship a worker's staged batches as one message (stage.lock held).

        Shipping under the lock keeps the per-tenant order airtight: no
        append can slip between taking the staged batches and enqueueing
        them, so the inbox sees batches in exactly the caller's order.
        """
        if not stage.batches:
            return
        message = list(stage.batches.items())
        stage.batches = {}
        stage.items = 0
        stage.nbytes = 0
        self._workers[index].send("append_many", message)

    def _ship_worker(self, index: int) -> None:
        stage = self._stages[index]
        with stage.lock:
            self._ship_locked(index, stage)

    def _ship_all(self) -> None:
        for index in range(len(self._workers)):
            self._ship_worker(index)

    def _flush_loop(self) -> None:  # pragma: no cover - timing-dependent
        while not self._flusher_stop.wait(self.flush_interval):
            try:
                self._ship_all()
            except Exception:
                # A dead worker's full inbox surfaces through the
                # synchronous paths; the timer must keep running.
                pass

    def flush(self, raise_on_failure: bool = True) -> dict:
        """Ship and apply everything staged and queued; surface failures.

        Observes every staged-but-unshipped buffer (they are shipped first),
        waits until each worker has processed its whole inbox, and returns
        the aggregated worker stats (same shape as :meth:`stats`).  With
        ``raise_on_failure`` (the default), any append that failed since
        the last flush -- including background checkpoint-write failures --
        raises an :class:`~repro.ingest.partition.AppendError` listing
        every ``(tenant, message)`` pair.
        """
        self._check_open()
        self._ship_all()
        rows = [worker.request("sync") for worker in self._workers]
        stats = self._combine(rows)
        if self._writer is not None:
            # flush() is the settlement point: every eviction the appends
            # above triggered must be durable before the stats report it.
            self._writer.drain(timeout=self.reply_timeout)
            stats["failures"].extend(
                (tenant, f"checkpoint write failed: {message}")
                for tenant, message in self._writer.pop_errors()
            )
            stats["checkpoint"] = {
                "writes": self._writer.writes,
                "skipped_writes": self._writer.skipped_writes,
                "take_backs": self._writer.take_backs,
                "pending": self._writer.pending_count,
            }
        if raise_on_failure and stats["failures"]:
            raise AppendError(stats["failures"])
        return stats

    def audit_memory(self) -> list:
        """Ledger-estimate vs exact words for every resident tenant.

        Flushes first, then asks each worker to measure every resident
        summarizer exactly; returns ``(tenant_id, estimated, exact)`` rows
        with the estimates as they stood *before* the audit re-anchored the
        ledgers.  This is the amortized-accounting tolerance probe used by
        the tests and the benchmark.
        """
        self._check_open()
        self._ship_all()
        return [
            row for worker in self._workers for row in worker.request("audit")
        ]

    def snapshot(self, tenant_id: str, sampling_seed: int | None = None):
        """A mid-stream Release of a continual tenant (post-processing only).

        Serialised through the owning worker, so the snapshot sits at a
        well-defined point of the tenant's append order.  Evicted tenants
        are restored transparently first.
        """
        self._check_open()
        self._require_tenant(tenant_id)
        index = partition_of(tenant_id, len(self._workers))
        self._ship_worker(index)
        return self._workers[index].request("snapshot", tenant_id, sampling_seed)

    def release(self, tenant_id: str):
        """Seal a tenant's stream and return its final Release.

        The tenant's checkpoint file (if any) is removed with the release
        -- the stream is over -- and, when the service fronts a store, the
        live entry is replaced by the release as a static entry, so the
        tenant stays queryable over HTTP after its stream ends.
        """
        self._check_open()
        self._require_tenant(tenant_id)
        index = partition_of(tenant_id, len(self._workers))
        self._ship_worker(index)
        release = self._workers[index].request("release", tenant_id)
        if self.store is not None:
            self.store.add(tenant_id, release)
        return release

    def evict(self, tenant_id: str) -> bool:
        """Checkpoint a tenant to disk and drop it from memory now.

        Returns whether the tenant was resident.  The next touch restores
        it byte-identically; until then a live continual tenant is
        unregistered from the store (querying it over HTTP is a 404).
        """
        self._check_open()
        self._require_tenant(tenant_id)
        index = partition_of(tenant_id, len(self._workers))
        self._ship_worker(index)
        evicted = bool(self._workers[index].request("evict", tenant_id))
        if evicted and self._writer is not None:
            # Explicit eviction is a durability request: don't return until
            # the background writer has landed this tenant's checkpoint.
            self._writer.wait_for(tenant_id, timeout=self.reply_timeout)
        return evicted

    # ------------------------------------------------------------------ #
    # live serving integration
    # ------------------------------------------------------------------ #
    def _on_live_event(self, tenant_id: str, kind: str) -> None:
        """Worker-thread callback maintaining the store's live entries."""
        if self.store is None:
            return
        if kind == "data":
            self.store.register_live(tenant_id, LiveTenantHandle(self, tenant_id))
        elif kind in ("evict", "release"):
            self.store.unregister_live(tenant_id)

    # ------------------------------------------------------------------ #
    # stats / shutdown
    # ------------------------------------------------------------------ #
    @staticmethod
    def _combine(rows: list[dict]) -> dict:
        combined = {
            "workers": len(rows),
            "resident": sum(row["resident"] for row in rows),
            "released": sum(row["released"] for row in rows),
            "memory_words": sum(row["memory_words"] for row in rows),
            "evictions": sum(row["evictions"] for row in rows),
            "restores": sum(row["restores"] for row in rows),
            "items_ingested": sum(row["items_ingested"] for row in rows),
            "appends": sum(row["appends"] for row in rows),
            "exact_measures": sum(row["exact_measures"] for row in rows),
            "failures": [failure for row in rows for failure in row["failures"]],
        }
        return combined

    def stats(self) -> dict:
        """Aggregated service statistics (flushes the workers first).

        Includes the privacy-budget summary from the registry, so the row
        reports tenants, residency, words, evictions/restores, items and
        total admitted epsilon in one place.
        """
        stats = self.flush(raise_on_failure=False)
        stats["tenants"] = len(self._specs)
        stats["budget"] = self.budget_registry.summary()
        return stats

    def close(self) -> dict:
        """Drain, checkpoint every resident tenant, and stop the workers.

        Idempotent.  Live store entries are unregistered (the service can
        no longer answer for them); released tenants stay as the static
        entries :meth:`release` added.  Returns the final stats row.
        """
        if self._closed:
            return {"workers": 0, "closed": True}
        self._flusher_stop.set()
        if self._flusher is not None:
            self._flusher.join(timeout=self.reply_timeout)
        self._ship_all()
        rows = [worker.request("drain") for worker in self._workers]
        self._closed = True
        for worker in self._workers:
            worker.stop()
        if self._writer is not None:
            # Land every eviction checkpoint the drain handed over before
            # reporting the service closed.
            self._writer.close(timeout=self.reply_timeout)
        if self.store is not None:
            for tenant_id in list(self._specs):
                self.store.unregister_live(tenant_id)
        stats = self._combine(rows)
        stats["tenants"] = len(self._specs)
        stats["budget"] = self.budget_registry.summary()
        return stats

    def __enter__(self) -> "IngestService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"IngestService(tenants={len(self._specs)}, workers={len(self._workers)}, "
            f"memory_budget={self.checkpoint_dir is not None})"
        )
