"""Multi-tenant ingestion service: thousands of concurrent private streams.

``repro.ingest`` is the long-running layer above the one-stream library
calls: an :class:`~repro.ingest.service.IngestService` owns many tenants at
once (each a one-shot :class:`~repro.core.privhp.PrivHP` or continual
:class:`~repro.continual.privhp.PrivHPContinual` summarizer built from its
:class:`~repro.ingest.spec.TenantSpec`), routes batched appends through a
hash-partitioned worker pool with exclusive per-partition ownership,
enforces per-tenant privacy budgets at admission and a service-wide word
budget at runtime (cold tenants evicted to checkpoints, restored
byte-identically), and plugs into :mod:`repro.serve` so a continual
tenant's live stream is queryable over HTTP the moment it has data.

See ``docs/ARCHITECTURE.md`` ("Ingestion service") for the tenant
lifecycle and the concurrency/privacy design, and ``examples/ingest_demo.py``
for a 100-tenant end-to-end run.
"""

from repro.ingest.accounting import MemoryLedger, TenantBudgetRegistry
from repro.ingest.intake import RateLimiter, ingest_file, iter_append_records, watch_directory
from repro.ingest.partition import (
    DEFAULT_REPLY_TIMEOUT,
    AppendError,
    IngestWorker,
    partition_of,
)
from repro.ingest.service import IngestService, LiveTenantHandle
from repro.ingest.spec import TenantSpec, load_tenant_specs, save_tenant_spec

__all__ = [
    "DEFAULT_REPLY_TIMEOUT",
    "AppendError",
    "IngestService",
    "IngestWorker",
    "LiveTenantHandle",
    "MemoryLedger",
    "RateLimiter",
    "TenantBudgetRegistry",
    "TenantSpec",
    "ingest_file",
    "iter_append_records",
    "load_tenant_specs",
    "partition_of",
    "save_tenant_spec",
    "watch_directory",
]
