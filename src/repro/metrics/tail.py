"""Tail norms of level-wise subdomain frequency vectors.

The paper measures the skew of a dataset through ``tail_k^l``: the vector of
subdomain cardinalities at level ``l`` with the ``k`` largest coordinates set
to zero.  ``||tail_k^l||_1`` governs both the pruning error (Lemma 7) and the
sketch estimation error (Lemma 4), so the experiments report it alongside the
Wasserstein distances to verify the predicted dependence on skew.
"""

from __future__ import annotations

import numpy as np

from repro.domain.base import Cell, Domain

__all__ = [
    "level_frequencies",
    "tail_norm_from_counts",
    "tail_norm",
    "head_norm",
    "skew_profile",
]


def level_frequencies(data, domain: Domain, level: int) -> dict[Cell, int]:
    """Exact subdomain frequencies ``C_l`` of a dataset at one level."""
    return domain.level_frequencies(data, level)


def tail_norm_from_counts(counts, k: int) -> float:
    """``||tail_k(v)||_1``: the total mass outside the ``k`` largest coordinates.

    ``counts`` may be a mapping (cell -> count) or any iterable of counts.
    ``k = 0`` returns the full L1 norm; ``k`` larger than the support returns 0.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if isinstance(counts, dict):
        values = np.array(sorted(counts.values(), reverse=True), dtype=float)
    else:
        values = np.array(sorted(counts, reverse=True), dtype=float)
    if values.size == 0:
        return 0.0
    return float(np.sum(values[k:]))


def head_norm(counts, k: int) -> float:
    """Mass captured by the ``k`` largest coordinates (complement of the tail)."""
    if isinstance(counts, dict):
        values = np.array(sorted(counts.values(), reverse=True), dtype=float)
    else:
        values = np.array(sorted(counts, reverse=True), dtype=float)
    if values.size == 0:
        return 0.0
    return float(np.sum(values[:k]))


def tail_norm(data, domain: Domain, level: int, k: int) -> float:
    """``||tail_k^level(X)||_1`` computed from the raw dataset."""
    counts = level_frequencies(data, domain, level)
    return tail_norm_from_counts(counts, k)


def skew_profile(data, domain: Domain, levels, k: int) -> dict[int, float]:
    """Normalised tail fraction ``||tail_k^l||_1 / n`` for each requested level.

    Values near 0 mean the level is dominated by its top-``k`` cells (high
    skew, pruning is nearly free); values near 1 mean the level is close to
    uniform (pruning is expensive).
    """
    data = list(data)
    if not data:
        raise ValueError("data must be non-empty")
    profile: dict[int, float] = {}
    for level in levels:
        profile[int(level)] = tail_norm(data, domain, level, k) / len(data)
    return profile
