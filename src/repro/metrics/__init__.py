"""Utility metrics: Wasserstein distances, tail norms, evaluation harness.

The paper measures utility as the expected 1-Wasserstein distance between the
empirical measure of the input and the synthetic generator's distribution
(Section 3.2), and expresses the pruning cost via the tail norm
``||tail_k||_1`` of the level-wise subdomain frequency vector.  This package
implements both, plus the evaluation harness shared by every experiment.
"""

from repro.metrics.wasserstein import (
    empirical_wasserstein,
    hierarchical_wasserstein,
    sliced_wasserstein,
    wasserstein1_1d,
    wasserstein1_exact,
)
from repro.metrics.tail import (
    level_frequencies,
    skew_profile,
    tail_norm,
    tail_norm_from_counts,
)
from repro.metrics.evaluation import EvaluationResult, evaluate_method

__all__ = [
    "EvaluationResult",
    "empirical_wasserstein",
    "evaluate_method",
    "hierarchical_wasserstein",
    "level_frequencies",
    "skew_profile",
    "sliced_wasserstein",
    "tail_norm",
    "tail_norm_from_counts",
    "wasserstein1_1d",
    "wasserstein1_exact",
]
