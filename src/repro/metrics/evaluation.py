"""Shared evaluation harness for synthetic data methods.

Every experiment in the paper reduces to the same loop: fit a method on a
dataset, sample synthetic data, measure the 1-Wasserstein distance to the
input's empirical measure, and record the memory the method used.  The
harness runs that loop over several random repetitions (the paper's bounds
are on the *expected* distance) and reports summary statistics.

A "method" is any object implementing the small protocol of
:class:`repro.baselines.base.SyntheticDataMethod`: a ``name``, a
``fit(data, rng)`` returning a sampler with ``sample(size)``, and a
``memory_words()`` accessor valid after fitting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.domain.base import Domain
from repro.metrics.wasserstein import empirical_wasserstein

__all__ = ["EvaluationResult", "evaluate_method"]


@dataclass
class EvaluationResult:
    """Summary of one method evaluated on one dataset."""

    method: str
    wasserstein_mean: float
    wasserstein_std: float
    wasserstein_runs: list[float] = field(default_factory=list)
    memory_words: int = 0
    fit_seconds: float = 0.0
    sample_seconds: float = 0.0
    parameters: dict = field(default_factory=dict)

    def as_row(self, include_timings: bool = True) -> dict:
        """Flat dictionary suitable for tabular reporting.

        With ``include_timings=False`` the wall-clock fields are dropped,
        leaving only values that are a deterministic function of the data and
        the RNG seeds -- the form the experiment-matrix result store persists
        so reruns are byte-identical.
        """
        row = {
            "method": self.method,
            "wasserstein": self.wasserstein_mean,
            "wasserstein_std": self.wasserstein_std,
            "memory_words": self.memory_words,
        }
        if include_timings:
            row["fit_seconds"] = self.fit_seconds
            row["sample_seconds"] = self.sample_seconds
        row.update(self.parameters)
        return row


def evaluate_method(
    method,
    data,
    domain: Domain,
    synthetic_size: int | None = None,
    repetitions: int = 3,
    rng: np.random.Generator | int | None = None,
    exact_size_limit: int = 400,
    wasserstein_depth: int = 12,
    parameters: dict | None = None,
) -> EvaluationResult:
    """Fit ``method`` on ``data`` ``repetitions`` times and measure its utility.

    Parameters
    ----------
    method:
        Object implementing the synthetic-data-method protocol.
    data:
        The input dataset (list or array of domain points).
    domain:
        The metric domain, used both for distance computation and for
        hierarchical approximations.
    synthetic_size:
        Number of synthetic points drawn per repetition; defaults to the
        dataset size.
    repetitions:
        Independent fit/sample repetitions whose distances are averaged
        (estimating the expectation in the paper's bounds).
    rng:
        Seed or generator controlling all repetition randomness.
    exact_size_limit, wasserstein_depth:
        Forwarded to :func:`repro.metrics.wasserstein.empirical_wasserstein`.
    parameters:
        Extra key/value pairs recorded in the result (e.g. the sweep value).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be at least 1, got {repetitions}")
    data = list(data)
    if not data:
        raise ValueError("data must be non-empty")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if synthetic_size is None:
        synthetic_size = len(data)

    data_array = np.asarray(data)
    distances: list[float] = []
    memory_words = 0
    fit_seconds = 0.0
    sample_seconds = 0.0

    for _ in range(repetitions):
        run_rng = np.random.default_rng(generator.integers(0, 2**32 - 1))
        start = time.perf_counter()
        sampler = method.fit(data, rng=run_rng)
        fit_seconds += time.perf_counter() - start

        start = time.perf_counter()
        synthetic = sampler.sample(synthetic_size)
        sample_seconds += time.perf_counter() - start

        distances.append(
            empirical_wasserstein(
                data_array,
                np.asarray(synthetic),
                domain=domain,
                exact_size_limit=exact_size_limit,
                depth=wasserstein_depth,
                rng=run_rng,
            )
        )
        memory_words = max(memory_words, method.memory_words())

    distances_array = np.array(distances)
    return EvaluationResult(
        method=method.name,
        wasserstein_mean=float(distances_array.mean()),
        wasserstein_std=float(distances_array.std()),
        wasserstein_runs=[float(value) for value in distances],
        memory_words=int(memory_words),
        fit_seconds=fit_seconds / repetitions,
        sample_seconds=sample_seconds / repetitions,
        parameters=dict(parameters or {}),
    )
