"""Shared evaluation harness for synthetic data methods.

Every experiment in the paper reduces to the same loop: fit a method on a
dataset, sample synthetic data, measure the 1-Wasserstein distance to the
input's empirical measure, and record the memory the method used.  The
harness runs that loop over several random repetitions (the paper's bounds
are on the *expected* distance) and reports summary statistics.

A "method" is any object implementing the small protocol of
:class:`repro.baselines.base.SyntheticDataMethod`: a ``name``, a
``fit(data, rng)`` returning a sampler with ``sample(size)``, and a
``memory_words()`` accessor valid after fitting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.domain.base import Domain
from repro.metrics.wasserstein import empirical_wasserstein

__all__ = ["EvaluationResult", "evaluate_method", "evaluate_method_trajectory"]


@dataclass
class EvaluationResult:
    """Summary of one method evaluated on one dataset."""

    method: str
    wasserstein_mean: float
    wasserstein_std: float
    wasserstein_runs: list[float] = field(default_factory=list)
    memory_words: int = 0
    fit_seconds: float = 0.0
    sample_seconds: float = 0.0
    parameters: dict = field(default_factory=dict)
    #: Per-epoch error trajectory for time-varying (scenario) workloads:
    #: ``{"epoch_items": [...], "errors": [...], "errors_std": [...],
    #: "auc": float | None}``.  ``errors[e]`` is None at epochs the method was
    #: not evaluated at (one-shot methods only measure the horizon).
    trajectory: dict | None = None

    def as_row(self, include_timings: bool = True) -> dict:
        """Flat dictionary suitable for tabular reporting.

        With ``include_timings=False`` the wall-clock fields are dropped,
        leaving only values that are a deterministic function of the data and
        the RNG seeds -- the form the experiment-matrix result store persists
        so reruns are byte-identical.
        """
        row = {
            "method": self.method,
            "wasserstein": self.wasserstein_mean,
            "wasserstein_std": self.wasserstein_std,
            "memory_words": self.memory_words,
        }
        if include_timings:
            row["fit_seconds"] = self.fit_seconds
            row["sample_seconds"] = self.sample_seconds
        if self.trajectory is not None:
            row["num_epochs"] = len(self.trajectory["errors"])
            row["epoch_items"] = list(self.trajectory["epoch_items"])
            row["error_trajectory"] = list(self.trajectory["errors"])
            row["auc_error"] = self.trajectory["auc"]
        row.update(self.parameters)
        return row


def evaluate_method(
    method,
    data,
    domain: Domain,
    synthetic_size: int | None = None,
    repetitions: int = 3,
    rng: np.random.Generator | int | None = None,
    exact_size_limit: int = 400,
    wasserstein_depth: int = 12,
    parameters: dict | None = None,
) -> EvaluationResult:
    """Fit ``method`` on ``data`` ``repetitions`` times and measure its utility.

    Parameters
    ----------
    method:
        Object implementing the synthetic-data-method protocol.
    data:
        The input dataset (list or array of domain points).
    domain:
        The metric domain, used both for distance computation and for
        hierarchical approximations.
    synthetic_size:
        Number of synthetic points drawn per repetition; defaults to the
        dataset size.
    repetitions:
        Independent fit/sample repetitions whose distances are averaged
        (estimating the expectation in the paper's bounds).
    rng:
        Seed or generator controlling all repetition randomness.
    exact_size_limit, wasserstein_depth:
        Forwarded to :func:`repro.metrics.wasserstein.empirical_wasserstein`.
    parameters:
        Extra key/value pairs recorded in the result (e.g. the sweep value).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be at least 1, got {repetitions}")
    data = list(data)
    if not data:
        raise ValueError("data must be non-empty")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if synthetic_size is None:
        synthetic_size = len(data)

    data_array = np.asarray(data)
    distances: list[float] = []
    memory_words = 0
    fit_seconds = 0.0
    sample_seconds = 0.0

    for _ in range(repetitions):
        run_rng = np.random.default_rng(generator.integers(0, 2**32 - 1))
        start = time.perf_counter()
        sampler = method.fit(data, rng=run_rng)
        fit_seconds += time.perf_counter() - start

        start = time.perf_counter()
        synthetic = sampler.sample(synthetic_size)
        sample_seconds += time.perf_counter() - start

        distances.append(
            empirical_wasserstein(
                data_array,
                np.asarray(synthetic),
                domain=domain,
                exact_size_limit=exact_size_limit,
                depth=wasserstein_depth,
                rng=run_rng,
            )
        )
        memory_words = max(memory_words, method.memory_words())

    distances_array = np.array(distances)
    return EvaluationResult(
        method=method.name,
        wasserstein_mean=float(distances_array.mean()),
        wasserstein_std=float(distances_array.std()),
        wasserstein_runs=[float(value) for value in distances],
        memory_words=int(memory_words),
        fit_seconds=fit_seconds / repetitions,
        sample_seconds=sample_seconds / repetitions,
        parameters=dict(parameters or {}),
    )


def evaluate_method_trajectory(
    method,
    epochs,
    domain: Domain,
    synthetic_size: int | None = None,
    repetitions: int = 3,
    rng: np.random.Generator | int | None = None,
    exact_size_limit: int = 400,
    wasserstein_depth: int = 12,
    parameters: dict | None = None,
) -> EvaluationResult:
    """Evaluate ``method`` on a time-varying stream split into epochs.

    Methods exposing ``fit_trajectory(epochs, rng)`` (the continual path) are
    snapshotted at every epoch boundary and measured against the *cumulative*
    stream so far, producing a full per-epoch error trajectory plus its
    item-weighted area-under-error-curve summary (``auc``).  One-shot methods
    are fitted on the whole stream and evaluated at the horizon only; their
    trajectory carries ``None`` at every interior epoch, so downstream
    aggregation and gating compare methods only at epochs both measured.

    The headline ``wasserstein_mean`` is the final-epoch (horizon) error for
    both kinds, keeping trajectory rows comparable with static rows.
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be at least 1, got {repetitions}")
    epochs = [np.asarray(epoch) for epoch in epochs]
    if not epochs:
        raise ValueError("epochs must be a non-empty list of arrays")
    counts = [len(epoch) for epoch in epochs]
    total = int(sum(counts))
    if total == 0:
        raise ValueError("epochs must contain at least one item in total")
    full = np.concatenate(epochs)
    cumulative = np.cumsum(counts)
    if synthetic_size is None:
        synthetic_size = total

    if not hasattr(method, "fit_trajectory"):
        result = evaluate_method(
            method,
            full,
            domain,
            synthetic_size=synthetic_size,
            repetitions=repetitions,
            rng=rng,
            exact_size_limit=exact_size_limit,
            wasserstein_depth=wasserstein_depth,
            parameters=parameters,
        )
        errors = [None] * (len(epochs) - 1) + [result.wasserstein_mean]
        stds = [None] * (len(epochs) - 1) + [result.wasserstein_std]
        result.trajectory = {
            "epoch_items": [int(value) for value in cumulative],
            "errors": errors,
            "errors_std": stds,
            "auc": None,
        }
        return result

    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    per_rep: list[list[float | None]] = []
    memory_words = 0
    fit_seconds = 0.0
    sample_seconds = 0.0
    for _ in range(repetitions):
        run_rng = np.random.default_rng(generator.integers(0, 2**32 - 1))
        errors: list[float | None] = []
        iterator = method.fit_trajectory(epochs, rng=run_rng)
        for index in range(len(epochs)):
            start = time.perf_counter()
            sampler = next(iterator)
            fit_seconds += time.perf_counter() - start
            items = int(cumulative[index])
            if items == 0:
                # Nothing has arrived yet; there is no distribution to match.
                errors.append(None)
                continue
            start = time.perf_counter()
            synthetic = sampler.sample(synthetic_size)
            sample_seconds += time.perf_counter() - start
            errors.append(float(empirical_wasserstein(
                full[:items],
                np.asarray(synthetic),
                domain=domain,
                exact_size_limit=exact_size_limit,
                depth=wasserstein_depth,
                rng=run_rng,
            )))
        iterator.close()
        per_rep.append(errors)
        memory_words = max(memory_words, method.memory_words())

    mean_errors: list[float | None] = []
    std_errors: list[float | None] = []
    for index in range(len(epochs)):
        values = [rep[index] for rep in per_rep if rep[index] is not None]
        if values:
            mean_errors.append(float(np.mean(values)))
            std_errors.append(float(np.std(values)))
        else:
            mean_errors.append(None)
            std_errors.append(None)
    measured = [
        (count, error)
        for count, error in zip(counts, mean_errors)
        if error is not None and count > 0
    ]
    weight = sum(count for count, _error in measured)
    auc = (
        float(sum(count * error for count, error in measured) / weight)
        if weight
        else None
    )
    finals = [rep[-1] for rep in per_rep]
    finals_array = np.array(finals, dtype=float)
    return EvaluationResult(
        method=method.name,
        wasserstein_mean=float(finals_array.mean()),
        wasserstein_std=float(finals_array.std()),
        wasserstein_runs=[float(value) for value in finals],
        memory_words=int(memory_words),
        fit_seconds=fit_seconds / repetitions,
        sample_seconds=sample_seconds / repetitions,
        parameters=dict(parameters or {}),
        trajectory={
            "epoch_items": [int(value) for value in cumulative],
            "errors": mean_errors,
            "errors_std": std_errors,
            "auc": auc,
        },
    )
