"""1-Wasserstein distances between empirical measures.

Three estimators are provided, trading exactness for scalability:

* :func:`wasserstein1_1d` -- exact for scalar samples via the CDF formula.
* :func:`wasserstein1_exact` -- exact for any metric via the optimal-transport
  linear program; cost is O((n*m) variables), so it is intended for sample
  sizes in the low hundreds and is used to validate the approximations.
* :func:`hierarchical_wasserstein` -- an upper bound computed from level-wise
  cell frequencies of a binary decomposition; linear time, any dimension.
* :func:`sliced_wasserstein` -- the average of exact 1-d distances over random
  projections, a standard surrogate for d >= 2.

:func:`empirical_wasserstein` picks a sensible default given the domain and
sample sizes and is what the evaluation harness calls.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from repro.domain.base import Domain

__all__ = [
    "wasserstein1_1d",
    "wasserstein1_exact",
    "sliced_wasserstein",
    "hierarchical_wasserstein",
    "empirical_wasserstein",
]


def _as_2d(samples: np.ndarray) -> np.ndarray:
    """View samples as an ``(n, d)`` array, promoting scalars to d=1."""
    array = np.asarray(samples, dtype=float)
    if array.ndim == 1:
        return array.reshape(-1, 1)
    if array.ndim == 2:
        return array
    raise ValueError(f"samples must be 1- or 2-dimensional, got shape {array.shape}")


def wasserstein1_1d(samples_a, samples_b) -> float:
    """Exact 1-Wasserstein distance between two scalar samples.

    Uses the classical identity ``W1 = integral |F_a(t) - F_b(t)| dt`` over the
    merged support, which handles unequal sample sizes exactly.
    """
    a = np.sort(np.asarray(samples_a, dtype=float).ravel())
    b = np.sort(np.asarray(samples_b, dtype=float).ravel())
    if a.size == 0 or b.size == 0:
        raise ValueError("both samples must be non-empty")

    support = np.concatenate([a, b])
    support.sort(kind="mergesort")
    deltas = np.diff(support)
    cdf_a = np.searchsorted(a, support[:-1], side="right") / a.size
    cdf_b = np.searchsorted(b, support[:-1], side="right") / b.size
    return float(np.sum(np.abs(cdf_a - cdf_b) * deltas))


def wasserstein1_exact(
    samples_a,
    samples_b,
    metric: str | Domain = "linf",
) -> float:
    """Exact 1-Wasserstein distance via the optimal-transport linear program.

    ``metric`` is either the string ``"linf"``/``"l2"``/``"l1"`` applied to the
    raw coordinates or a :class:`~repro.domain.Domain`, whose ``distance`` is
    then used pairwise (this is how non-Euclidean domains such as IPv4 are
    evaluated exactly).
    """
    a = np.asarray(samples_a)
    b = np.asarray(samples_b)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ValueError("both samples must be non-empty")
    if n * m > 250_000:
        raise ValueError(
            f"exact transport with {n}x{m} pairs is too large; "
            "use hierarchical_wasserstein or sliced_wasserstein instead"
        )

    if isinstance(metric, Domain):
        costs = np.array([[metric.distance(x, y) for y in b] for x in a], dtype=float)
    else:
        xa = _as_2d(a)
        xb = _as_2d(b)
        diff = xa[:, None, :] - xb[None, :, :]
        if metric == "linf":
            costs = np.max(np.abs(diff), axis=2)
        elif metric == "l1":
            costs = np.sum(np.abs(diff), axis=2)
        elif metric == "l2":
            costs = np.sqrt(np.sum(diff**2, axis=2))
        else:
            raise ValueError(f"unknown metric {metric!r}")

    # Transport polytope: row sums 1/n, column sums 1/m.
    num_vars = n * m
    cost_vector = costs.ravel()
    row_constraints = np.zeros((n, num_vars))
    for i in range(n):
        row_constraints[i, i * m : (i + 1) * m] = 1.0
    col_constraints = np.zeros((m, num_vars))
    for j in range(m):
        col_constraints[j, j::m] = 1.0
    # Drop one redundant equality (total mass) to keep the system full rank.
    equality_matrix = np.vstack([row_constraints, col_constraints[:-1]])
    equality_rhs = np.concatenate([np.full(n, 1.0 / n), np.full(m - 1, 1.0 / m)])

    result = optimize.linprog(
        cost_vector,
        A_eq=equality_matrix,
        b_eq=equality_rhs,
        bounds=(0, None),
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"optimal transport LP failed: {result.message}")
    return float(result.fun)


def sliced_wasserstein(
    samples_a,
    samples_b,
    num_projections: int = 64,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Average of exact 1-d Wasserstein distances over random projections."""
    if num_projections <= 0:
        raise ValueError(f"num_projections must be positive, got {num_projections}")
    a = _as_2d(samples_a)
    b = _as_2d(samples_b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("samples must share their dimension")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    dimension = a.shape[1]
    if dimension == 1:
        return wasserstein1_1d(a.ravel(), b.ravel())
    total = 0.0
    for _ in range(num_projections):
        direction = generator.normal(size=dimension)
        direction /= np.linalg.norm(direction)
        total += wasserstein1_1d(a @ direction, b @ direction)
    return total / num_projections


def hierarchical_wasserstein(
    samples_a,
    samples_b,
    domain: Domain,
    depth: int = 10,
) -> float:
    """Dyadic upper bound on the 1-Wasserstein distance.

    Mass that disagrees between the two samples inside a level-``l`` cell must
    travel at most the diameter of that cell's parent, and mass that still
    agrees at the deepest level moves at most one leaf diameter.  Summing the
    level-wise total-variation mismatches weighted by the parent diameters
    yields a valid upper bound which is tight up to constants for dyadic
    decompositions -- the same geometry the paper's own analysis uses.
    """
    if depth < 1:
        raise ValueError(f"depth must be at least 1, got {depth}")
    a = list(samples_a)
    b = list(samples_b)
    if not a or not b:
        raise ValueError("both samples must be non-empty")

    bound = domain.level_max_diameter(depth)
    for level in range(1, depth + 1):
        counts_a = domain.level_frequencies(a, level)
        counts_b = domain.level_frequencies(b, level)
        cells = set(counts_a) | set(counts_b)
        mismatch = sum(
            abs(counts_a.get(cell, 0) / len(a) - counts_b.get(cell, 0) / len(b))
            for cell in cells
        )
        bound += 0.5 * mismatch * domain.level_max_diameter(level - 1)
    # W1 can never exceed the diameter of the space, so clip the bound there.
    return float(min(bound, domain.diameter()))


def empirical_wasserstein(
    samples_a,
    samples_b,
    domain: Domain | None = None,
    exact_size_limit: int = 400,
    depth: int = 12,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Distance between two samples with an automatically chosen estimator.

    Scalar samples always use the exact 1-d formula.  Vector samples use the
    exact transport LP when both samples are small enough, otherwise the
    hierarchical bound (when a domain is supplied) or sliced Wasserstein.
    """
    a = np.asarray(samples_a)
    b = np.asarray(samples_b)
    scalar = a.ndim == 1 and b.ndim == 1
    if scalar:
        return wasserstein1_1d(a, b)
    if len(a) <= exact_size_limit and len(b) <= exact_size_limit:
        metric = domain if domain is not None else "linf"
        return wasserstein1_exact(a, b, metric=metric)
    if domain is not None:
        return hierarchical_wasserstein(a, b, domain, depth=depth)
    return sliced_wasserstein(a, b, rng=rng)
