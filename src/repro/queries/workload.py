"""Random range-query workloads and their error evaluation.

Used by the range-query benchmark to quantify the paper's query-flexibility
claim: the same released structure answers arbitrary (not pre-registered)
range queries, and the error of each answer is compared against the ground
truth computed from the raw data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.domain.base import Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import ADDRESS_SPACE, IPv4Domain
from repro.queries.range_queries import RangeQueryEngine

__all__ = ["RangeQuery", "random_range_queries", "true_mass", "evaluate_range_workload"]


@dataclass(frozen=True)
class RangeQuery:
    """An axis-aligned range query with inclusive bounds.

    Example:
        >>> RangeQuery(lower=0.25, upper=0.5)
        RangeQuery(lower=0.25, upper=0.5)
    """

    lower: object
    upper: object

    def __post_init__(self) -> None:
        # Bounds are validated by the engine / domain at answer time; here we
        # only freeze them so queries are hashable workload elements.
        pass


def random_range_queries(
    domain: Domain,
    count: int,
    rng: np.random.Generator | int | None = None,
    min_width: float = 0.05,
    max_width: float = 0.5,
) -> list[RangeQuery]:
    """Draw ``count`` random range queries with widths in ``[min_width, max_width]``.

    Widths are expressed as a fraction of the domain extent per axis.

    Example:
        >>> from repro.domain.interval import UnitInterval
        >>> queries = random_range_queries(UnitInterval(), 3, rng=0)
        >>> len(queries)
        3
        >>> all(0.0 <= q.lower <= q.upper <= 1.0 for q in queries)
        True
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not 0 < min_width <= max_width <= 1:
        raise ValueError("widths must satisfy 0 < min_width <= max_width <= 1")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    queries: list[RangeQuery] = []
    for _ in range(count):
        if isinstance(domain, UnitInterval):
            width = generator.uniform(min_width, max_width)
            start = generator.uniform(0.0, 1.0 - width)
            queries.append(RangeQuery(lower=float(start), upper=float(start + width)))
        elif isinstance(domain, Hypercube):
            widths = generator.uniform(min_width, max_width, size=domain.dimension)
            starts = generator.uniform(0.0, 1.0 - widths)
            queries.append(RangeQuery(lower=tuple(starts), upper=tuple(starts + widths)))
        elif isinstance(domain, IPv4Domain):
            width = int(generator.uniform(min_width, max_width) * ADDRESS_SPACE)
            start = int(generator.integers(0, ADDRESS_SPACE - max(width, 1)))
            queries.append(RangeQuery(lower=start, upper=start + width))
        elif isinstance(domain, DiscreteDomain):
            width = max(1, int(generator.uniform(min_width, max_width) * domain.size))
            start = int(generator.integers(0, max(domain.size - width, 1)))
            queries.append(RangeQuery(lower=start, upper=min(start + width, domain.size - 1)))
        else:
            raise TypeError(f"random queries are not supported on {type(domain).__name__}")
    return queries


def true_mass(data, domain: Domain, query: RangeQuery) -> float:
    """The exact fraction of the raw data falling inside the query region.

    Example:
        >>> from repro.domain.interval import UnitInterval
        >>> true_mass([0.1, 0.3, 0.6, 0.9], UnitInterval(), RangeQuery(0.0, 0.5))
        0.5
    """
    data = np.asarray(data)
    if len(data) == 0:
        raise ValueError("data must be non-empty")
    if isinstance(domain, UnitInterval):
        inside = (data >= float(query.lower)) & (data <= float(query.upper))
    elif isinstance(domain, Hypercube):
        lower = np.asarray(query.lower, dtype=float)
        upper = np.asarray(query.upper, dtype=float)
        inside = np.all((data >= lower) & (data <= upper), axis=1)
    elif isinstance(domain, (IPv4Domain, DiscreteDomain)):
        inside = (data >= int(query.lower)) & (data <= int(query.upper))
    else:
        raise TypeError(f"true_mass is not supported on {type(domain).__name__}")
    return float(np.mean(inside))


def evaluate_range_workload(
    engine: RangeQueryEngine,
    data,
    domain: Domain,
    queries: list[RangeQuery],
) -> dict:
    """Answer every query privately and report the error statistics.

    Returns a dictionary with per-query absolute errors plus their mean, max
    and the mean true/estimated masses (useful for sanity checks).

    Example:
        >>> from repro.baselines.pmm import build_exact_tree
        >>> from repro.domain.interval import UnitInterval
        >>> data = [0.1, 0.3, 0.6, 0.9]
        >>> engine = RangeQueryEngine(build_exact_tree(data, UnitInterval(), 2), UnitInterval())
        >>> report = evaluate_range_workload(engine, data, UnitInterval(), [RangeQuery(0.0, 0.5)])
        >>> report["num_queries"], report["max_abs_error"]
        (1, 0.0)
    """
    if not queries:
        raise ValueError("the workload must contain at least one query")
    errors = []
    true_values = []
    estimated_values = []
    for query in queries:
        truth = true_mass(data, domain, query)
        estimate = engine.mass(query.lower, query.upper)
        errors.append(abs(estimate - truth))
        true_values.append(truth)
        estimated_values.append(estimate)
    errors_array = np.asarray(errors)
    return {
        "num_queries": len(queries),
        "mean_abs_error": float(errors_array.mean()),
        "max_abs_error": float(errors_array.max()),
        "median_abs_error": float(np.median(errors_array)),
        "mean_true_mass": float(np.mean(true_values)),
        "mean_estimated_mass": float(np.mean(estimated_values)),
        "errors": [float(value) for value in errors],
    }
