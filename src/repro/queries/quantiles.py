"""Quantile and inverse-CDF queries on ordered domains.

The private tree encodes a monotone CDF over any one-dimensional ordered
domain ([0,1], IPv4 addresses, finite universes), so quantiles can be read off
directly by a root-to-leaf descent: at each node, branch left when the
requested probability mass fits in the left child, otherwise subtract it and
branch right.  This is the query-side counterpart of the sampling procedure of
Section 5 and is again pure post-processing.

Construction compiles the tree's branching structure into a
:class:`~repro.queries.compiled.CompiledDescentTable` (child indices, left
counts, leaf payloads, plus the prefix-sum/CDF array over the ordered leaf
order), so a single quantile walks flat arrays instead of a dict and a batch
of probabilities descends level-synchronously -- one numpy pass per tree
level for the whole batch.  Each lane runs the same compare/subtract
sequence as the scalar walk, so batch answers are bit-identical per
probability (pinned in ``tests/test_queries_vectorized.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import PartitionTree
from repro.domain.base import Cell, Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain
from repro.queries.compiled import CompiledDescentTable

__all__ = ["QuantileEngine"]


class QuantileEngine:
    """Quantile function derived from a partition tree on an ordered domain.

    Example:
        >>> from repro.baselines.pmm import build_exact_tree
        >>> from repro.domain.interval import UnitInterval
        >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
        >>> engine = QuantileEngine(tree, UnitInterval())
        >>> engine.median()
        0.5
        >>> engine.interquartile_range()
        0.5
        >>> engine.quantiles([0.25, 0.5, 0.75])
        array([0.25, 0.5 , 0.75])
    """

    def __init__(
        self,
        tree: PartitionTree,
        domain: Domain,
        *,
        table: CompiledDescentTable | None = None,
    ) -> None:
        if not isinstance(domain, (UnitInterval, IPv4Domain, DiscreteDomain)):
            raise TypeError("quantile queries require a one-dimensional ordered domain")
        self.tree = tree
        self.domain = domain
        self._table = table if table is not None else CompiledDescentTable(tree, domain)

    @classmethod
    def from_compiled(
        cls, tree: PartitionTree, domain: Domain, table: CompiledDescentTable
    ) -> "QuantileEngine":
        """An engine over an already-compiled (e.g. memory-mapped) descent table.

        Used by the binary cold-start path
        (:func:`repro.io.binary.load_release_binary`) to skip the tree walk
        entirely: the node arrays come straight from the envelope's sections.
        """
        return cls(tree, domain, table=table)

    def _cell_upper_point(self, theta: Cell):
        """The largest point of a cell (used as the quantile representative)."""
        if isinstance(self.domain, UnitInterval):
            _, upper = self.domain.cell_bounds(theta)
            return float(upper)
        _, upper = self.domain.cell_range(theta)
        return int(upper)

    def _cell_interpolated_point(self, theta: Cell, fraction: float):
        """A point ``fraction`` of the way through the cell (linear interpolation)."""
        fraction = min(max(fraction, 0.0), 1.0)
        if isinstance(self.domain, UnitInterval):
            lower, upper = self.domain.cell_bounds(theta)
            return float(lower + fraction * (upper - lower))
        lower, upper = self.domain.cell_range(theta)
        if lower > upper:
            return int(lower)
        return int(round(lower + fraction * (upper - lower)))

    def quantile(self, probability: float):
        """The ``probability``-quantile of the released distribution."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")
        if self._table.root_count <= 0:
            # Degenerate release: fall back to the quantile of the uniform law.
            return self._cell_interpolated_point((), probability)

        node, remaining = self._table.descend(probability)
        theta = self._table.cells[node]
        leaf_count = self._table._py_leaf_count[node]
        if leaf_count <= 0:
            return self._cell_upper_point(theta)
        return self._cell_interpolated_point(theta, remaining / leaf_count)

    def quantiles(self, probabilities) -> np.ndarray:
        """Vectorised quantile evaluation: one level-synchronous batch descent.

        The whole batch walks the compiled node table together -- one numpy
        pass per tree level -- so cost is O(depth) array operations for any
        batch size.  Entry ``i`` is bit-identical to
        ``quantile(probabilities[i])``.
        """
        values = np.asarray([float(p) for p in probabilities])
        if values.size == 0:
            return np.asarray([])
        invalid = ~((values >= 0.0) & (values <= 1.0))
        if invalid.any():
            bad = float(values[int(np.argmax(invalid))])
            raise ValueError(f"probability must lie in [0, 1], got {bad}")
        if self._table.root_count <= 0:
            return np.asarray([self._cell_interpolated_point((), p) for p in values])
        nodes, remaining = self._table.descend_many(values)
        return self._table.interpolate_many(nodes, remaining)

    def median(self):
        """The released distribution's median."""
        return self.quantile(0.5)

    def interquartile_range(self) -> float:
        """Q3 - Q1 of the released distribution, in the domain's raw units."""
        q1 = self.quantile(0.25)
        q3 = self.quantile(0.75)
        return float(q3 - q1)
