"""Quantile and inverse-CDF queries on ordered domains.

The private tree encodes a monotone CDF over any one-dimensional ordered
domain ([0,1], IPv4 addresses, finite universes), so quantiles can be read off
directly by a root-to-leaf descent: at each node, branch left when the
requested probability mass fits in the left child, otherwise subtract it and
branch right.  This is the query-side counterpart of the sampling procedure of
Section 5 and is again pure post-processing.
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import PartitionTree
from repro.domain.base import Cell, Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain

__all__ = ["QuantileEngine"]


class QuantileEngine:
    """Quantile function derived from a partition tree on an ordered domain.

    Example:
        >>> from repro.baselines.pmm import build_exact_tree
        >>> from repro.domain.interval import UnitInterval
        >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
        >>> engine = QuantileEngine(tree, UnitInterval())
        >>> engine.median()
        0.5
        >>> engine.interquartile_range()
        0.5
    """

    def __init__(self, tree: PartitionTree, domain: Domain) -> None:
        if not isinstance(domain, (UnitInterval, IPv4Domain, DiscreteDomain)):
            raise TypeError("quantile queries require a one-dimensional ordered domain")
        self.tree = tree
        self.domain = domain

    def _cell_upper_point(self, theta: Cell):
        """The largest point of a cell (used as the quantile representative)."""
        if isinstance(self.domain, UnitInterval):
            _, upper = self.domain.cell_bounds(theta)
            return float(upper)
        _, upper = self.domain.cell_range(theta)
        return int(upper)

    def _cell_interpolated_point(self, theta: Cell, fraction: float):
        """A point ``fraction`` of the way through the cell (linear interpolation)."""
        fraction = min(max(fraction, 0.0), 1.0)
        if isinstance(self.domain, UnitInterval):
            lower, upper = self.domain.cell_bounds(theta)
            return float(lower + fraction * (upper - lower))
        lower, upper = self.domain.cell_range(theta)
        if lower > upper:
            return int(lower)
        return int(round(lower + fraction * (upper - lower)))

    def quantile(self, probability: float):
        """The ``probability``-quantile of the released distribution."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability}")
        total = max(self.tree.root_count, 0.0)
        if total <= 0:
            # Degenerate release: fall back to the quantile of the uniform law.
            return self._cell_interpolated_point((), probability)

        remaining = probability * total
        theta: Cell = ()
        while self.tree.has_children(theta):
            left, right = theta + (0,), theta + (1,)
            left_count = max(self.tree.get(left, 0.0), 0.0)
            if left_count >= remaining:
                theta = left
            else:
                remaining -= left_count
                theta = right
        leaf_count = max(self.tree.get(theta, 0.0), 0.0)
        if leaf_count <= 0:
            return self._cell_upper_point(theta)
        return self._cell_interpolated_point(theta, remaining / leaf_count)

    def quantiles(self, probabilities) -> np.ndarray:
        """Vectorised quantile evaluation."""
        return np.asarray([self.quantile(float(p)) for p in probabilities])

    def median(self):
        """The released distribution's median."""
        return self.quantile(0.5)

    def interquartile_range(self) -> float:
        """Q3 - Q1 of the released distribution, in the domain's raw units."""
        q1 = self.quantile(0.25)
        q3 = self.quantile(0.75)
        return float(q3 - q1)
