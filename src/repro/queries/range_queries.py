"""Range (box) queries answered from a partition tree.

A range query asks what fraction of the data falls inside an axis-aligned
region.  The engine answers it from the released tree by summing, over the
leaf cells, the leaf's probability multiplied by the fraction of the leaf's
volume that intersects the query region -- which is exactly the probability
the synthetic generator assigns to the region (points are uniform within a
leaf), computed in closed form instead of by Monte-Carlo sampling.

Supported domains: :class:`~repro.domain.interval.UnitInterval`,
:class:`~repro.domain.hypercube.Hypercube`, :class:`~repro.domain.geo.GeoDomain`
(axis-aligned boxes in raw coordinates), and
:class:`~repro.domain.ipv4.IPv4Domain` / :class:`~repro.domain.discrete.DiscreteDomain`
(integer ranges).
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import PartitionTree
from repro.domain.base import Cell, Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain

__all__ = ["RangeQueryEngine"]


def _interval_overlap(cell_low: float, cell_high: float, low: float, high: float) -> float:
    """Length of the intersection of two closed intervals."""
    return max(0.0, min(cell_high, high) - max(cell_low, low))


class RangeQueryEngine:
    """Answers axis-aligned range queries from a (noisy, consistent) tree.

    Construction precomputes the leaf probabilities once; every query after
    that is a single pass over the leaves.  :meth:`repro.api.release.Release.range_engine`
    caches one instance per release for exactly this reason.

    Example:
        >>> from repro.baselines.pmm import build_exact_tree
        >>> from repro.domain.interval import UnitInterval
        >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
        >>> engine = RangeQueryEngine(tree, UnitInterval())
        >>> engine.mass(0.0, 0.5)
        0.5
        >>> engine.count(0.0, 0.5)
        2.0
        >>> engine.cdf(0.25)
        0.25
    """

    def __init__(self, tree: PartitionTree, domain: Domain) -> None:
        self.tree = tree
        self.domain = domain
        self._leaf_probabilities = self._compute_leaf_probabilities()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _compute_leaf_probabilities(self) -> dict[Cell, float]:
        leaves = self.tree.leaves()
        weights = np.array([max(self.tree.count(theta), 0.0) for theta in leaves])
        total = float(weights.sum())
        if total <= 0:
            return {(): 1.0}
        return {theta: float(weight / total) for theta, weight in zip(leaves, weights)}

    # ------------------------------------------------------------------ #
    # geometry: fraction of a leaf cell covered by the query region
    # ------------------------------------------------------------------ #
    def _cell_fraction(self, theta: Cell, lower, upper) -> float:
        domain = self.domain
        if isinstance(domain, UnitInterval):
            cell_low, cell_high = domain.cell_bounds(theta)
            width = cell_high - cell_low
            if width <= 0:
                return 0.0
            return _interval_overlap(cell_low, cell_high, float(lower), float(upper)) / width
        if isinstance(domain, (Hypercube, GeoDomain)):
            cell_low, cell_high = domain.cell_bounds(theta)
            if isinstance(domain, GeoDomain):
                # Queries arrive in raw (lat, lon) coordinates; convert to the
                # normalised unit square the cells live in.
                lower = domain._normalise(lower)
                upper = domain._normalise(upper)
            lower = np.asarray(lower, dtype=float).ravel()
            upper = np.asarray(upper, dtype=float).ravel()
            if lower.shape != cell_low.shape or upper.shape != cell_low.shape:
                raise ValueError("query bounds must match the domain dimension")
            fraction = 1.0
            for axis in range(len(cell_low)):
                width = cell_high[axis] - cell_low[axis]
                if width <= 0:
                    return 0.0
                overlap = _interval_overlap(
                    cell_low[axis], cell_high[axis], lower[axis], upper[axis]
                )
                fraction *= overlap / width
            return fraction
        if isinstance(domain, (IPv4Domain, DiscreteDomain)):
            cell_low, cell_high = domain.cell_range(theta)
            if cell_low > cell_high:
                return 0.0
            low = int(lower) if not isinstance(lower, str) else IPv4Domain.parse(lower)
            high = int(upper) if not isinstance(upper, str) else IPv4Domain.parse(upper)
            overlap = max(0, min(cell_high, high) - max(cell_low, low) + 1)
            return overlap / (cell_high - cell_low + 1)
        raise TypeError(f"range queries are not supported on {type(domain).__name__}")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def mass(self, lower, upper) -> float:
        """Estimated probability mass of the region ``[lower, upper]``.

        For vector domains ``lower``/``upper`` are the per-axis bounds of an
        axis-aligned box; for scalar/ordered domains they are the interval or
        integer-range endpoints (inclusive).
        """
        self._validate_bounds(lower, upper)
        total = 0.0
        for theta, probability in self._leaf_probabilities.items():
            if probability <= 0:
                continue
            total += probability * self._cell_fraction(theta, lower, upper)
        return float(min(max(total, 0.0), 1.0))

    def count(self, lower, upper) -> float:
        """Estimated number of stream items in the region (mass x total count)."""
        return self.mass(lower, upper) * max(self.tree.root_count, 0.0)

    def cdf(self, point) -> float:
        """Estimated CDF at ``point`` for one-dimensional ordered domains."""
        domain = self.domain
        if isinstance(domain, UnitInterval):
            return self.mass(0.0, float(point))
        if isinstance(domain, (IPv4Domain, DiscreteDomain)):
            return self.mass(0, point)
        raise TypeError("cdf queries require a one-dimensional ordered domain")

    def marginal(self, axis: int, bins: int = 32) -> np.ndarray:
        """One-dimensional marginal histogram for a vector domain.

        Returns the probability mass of ``bins`` equal-width slabs along
        ``axis`` (normalised coordinates for geographic domains).
        """
        if not isinstance(self.domain, (Hypercube, GeoDomain)):
            raise TypeError("marginals require a vector-valued domain")
        dimension = 2 if isinstance(self.domain, GeoDomain) else self.domain.dimension
        if not 0 <= axis < dimension:
            raise ValueError(f"axis must lie in [0, {dimension}), got {axis}")
        if bins < 1:
            raise ValueError(f"bins must be positive, got {bins}")

        edges = np.linspace(0.0, 1.0, bins + 1)
        masses = np.zeros(bins)
        for theta, probability in self._leaf_probabilities.items():
            if probability <= 0:
                continue
            if isinstance(self.domain, GeoDomain):
                cell_low, cell_high = self.domain.cell_bounds(theta)
            else:
                cell_low, cell_high = self.domain.cell_bounds(theta)
            width = cell_high[axis] - cell_low[axis]
            if width <= 0:
                continue
            for bin_index in range(bins):
                overlap = _interval_overlap(
                    cell_low[axis], cell_high[axis], edges[bin_index], edges[bin_index + 1]
                )
                masses[bin_index] += probability * overlap / width
        return masses

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def _validate_bounds(self, lower, upper) -> None:
        domain = self.domain
        if isinstance(domain, (UnitInterval,)):
            if float(lower) > float(upper):
                raise ValueError("lower bound must not exceed upper bound")
        elif isinstance(domain, (IPv4Domain, DiscreteDomain)):
            low = int(lower) if not isinstance(lower, str) else IPv4Domain.parse(lower)
            high = int(upper) if not isinstance(upper, str) else IPv4Domain.parse(upper)
            if low > high:
                raise ValueError("lower bound must not exceed upper bound")
        else:
            lower_arr = np.asarray(
                domain._normalise(lower) if isinstance(domain, GeoDomain) else lower, dtype=float
            )
            upper_arr = np.asarray(
                domain._normalise(upper) if isinstance(domain, GeoDomain) else upper, dtype=float
            )
            if np.any(lower_arr > upper_arr):
                raise ValueError("lower bounds must not exceed upper bounds on any axis")
