"""Range (box) queries answered from a partition tree.

A range query asks what fraction of the data falls inside an axis-aligned
region.  The engine answers it from the released tree by summing, over the
leaf cells, the leaf's probability multiplied by the fraction of the leaf's
volume that intersects the query region -- which is exactly the probability
the synthetic generator assigns to the region (points are uniform within a
leaf), computed in closed form instead of by Monte-Carlo sampling.

Construction compiles the tree into a :class:`~repro.queries.compiled.CompiledLeafTable`
-- contiguous arrays of leaf probabilities and cell geometry -- so a query
is vectorised overlap arithmetic over all leaves at once, and a *batch* of
queries (:meth:`RangeQueryEngine.mass_many`) is a single numpy pass with no
Python loop over either queries or leaves.  Answers are bit-identical to
the historical per-leaf Python loop (pinned in
``tests/test_queries_vectorized.py``).

Supported domains: :class:`~repro.domain.interval.UnitInterval`,
:class:`~repro.domain.hypercube.Hypercube`, :class:`~repro.domain.geo.GeoDomain`
(axis-aligned boxes in raw coordinates), and
:class:`~repro.domain.ipv4.IPv4Domain` / :class:`~repro.domain.discrete.DiscreteDomain`
(integer ranges).
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import PartitionTree
from repro.domain.base import Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain
from repro.queries.compiled import CompiledLeafTable

__all__ = ["RangeQueryEngine"]


class RangeQueryEngine:
    """Answers axis-aligned range queries from a (noisy, consistent) tree.

    Construction compiles the leaf table once; every query after that is
    array arithmetic, and whole workloads go through :meth:`mass_many` /
    :meth:`count_many` / :meth:`cdf_many` in one vectorised pass.
    :meth:`repro.api.release.Release.range_engine` caches one instance per
    release for exactly this reason.

    Example:
        >>> from repro.baselines.pmm import build_exact_tree
        >>> from repro.domain.interval import UnitInterval
        >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
        >>> engine = RangeQueryEngine(tree, UnitInterval())
        >>> engine.mass(0.0, 0.5)
        0.5
        >>> engine.count(0.0, 0.5)
        2.0
        >>> engine.cdf(0.25)
        0.25
        >>> engine.mass_many([0.0, 0.5], [0.5, 1.0])
        array([0.5, 0.5])
    """

    def __init__(
        self,
        tree: PartitionTree,
        domain: Domain,
        *,
        table: CompiledLeafTable | None = None,
    ) -> None:
        self.tree = tree
        self.domain = domain
        self._table = table if table is not None else CompiledLeafTable(tree, domain)

    @classmethod
    def from_compiled(
        cls, tree: PartitionTree, domain: Domain, table: CompiledLeafTable
    ) -> "RangeQueryEngine":
        """An engine over an already-compiled (e.g. memory-mapped) leaf table.

        This is the binary cold-start path: :func:`repro.io.binary.load_release_binary`
        reconstructs the table straight from the envelope's array sections, so
        the engine is ready without walking the tree at all.
        """
        return cls(tree, domain, table=table)

    # ------------------------------------------------------------------ #
    # canonicalisation: raw per-query bounds -> kernel-ready arrays
    # ------------------------------------------------------------------ #
    def _canonical_bounds(self, lowers, uppers) -> tuple[np.ndarray, np.ndarray]:
        kind = self._table.kind
        if kind == "interval":
            low = np.array([float(value) for value in lowers])
            high = np.array([float(value) for value in uppers])
            if np.any(low > high):
                raise ValueError("lower bound must not exceed upper bound")
            return low, high
        if kind == "intrange":
            low = np.array([self._as_int(value) for value in lowers], dtype=np.int64)
            high = np.array([self._as_int(value) for value in uppers], dtype=np.int64)
            if np.any(low > high):
                raise ValueError("lower bound must not exceed upper bound")
            return low, high
        # box: normalise geographic bounds per query, then shape-check.
        domain = self.domain
        dimension = self._table.dimension
        low_rows = []
        high_rows = []
        for lower, upper in zip(lowers, uppers):
            if isinstance(domain, GeoDomain):
                # Queries arrive in raw (lat, lon) coordinates; convert to
                # the normalised unit square the cells live in.
                lower = domain._normalise(lower)
                upper = domain._normalise(upper)
            lower = np.asarray(lower, dtype=float).ravel()
            upper = np.asarray(upper, dtype=float).ravel()
            if np.any(lower > upper):
                raise ValueError("lower bounds must not exceed upper bounds on any axis")
            if lower.shape != (dimension,) or upper.shape != (dimension,):
                raise ValueError("query bounds must match the domain dimension")
            low_rows.append(lower)
            high_rows.append(upper)
        if not low_rows:
            return np.empty((0, dimension)), np.empty((0, dimension))
        return np.array(low_rows), np.array(high_rows)

    @staticmethod
    def _as_int(value) -> int:
        return IPv4Domain.parse(value) if isinstance(value, str) else int(value)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def mass(self, lower, upper) -> float:
        """Estimated probability mass of the region ``[lower, upper]``.

        For vector domains ``lower``/``upper`` are the per-axis bounds of an
        axis-aligned box; for scalar/ordered domains they are the interval or
        integer-range endpoints (inclusive).
        """
        return float(self.mass_many([lower], [upper])[0])

    def mass_many(self, lowers, uppers) -> np.ndarray:
        """Probability masses of a whole batch of regions in one numpy pass.

        ``lowers``/``uppers`` are parallel sequences of per-query bounds in
        the same per-domain form :meth:`mass` accepts.  Entry ``i`` of the
        result is bit-identical to ``mass(lowers[i], uppers[i])``.
        """
        low, high = self._canonical_bounds(lowers, uppers)
        return self._table.mass_many(low, high)

    def count(self, lower, upper) -> float:
        """Estimated number of stream items in the region (mass x total count).

        The total comes from the compiled table's ``root_count`` (captured at
        compilation, identical to ``tree.root_count``) so counting never has
        to touch the tree -- which the binary path materialises lazily.
        """
        return self.mass(lower, upper) * max(self._table.root_count, 0.0)

    def count_many(self, lowers, uppers) -> np.ndarray:
        """Batch variant of :meth:`count` (one vectorised pass)."""
        return self.mass_many(lowers, uppers) * max(self._table.root_count, 0.0)

    def cdf(self, point) -> float:
        """Estimated CDF at ``point`` for one-dimensional ordered domains."""
        return float(self.cdf_many([point])[0])

    def cdf_many(self, points) -> np.ndarray:
        """Batch variant of :meth:`cdf` (one vectorised pass)."""
        domain = self.domain
        if isinstance(domain, UnitInterval):
            points = [float(point) for point in points]
            return self.mass_many([0.0] * len(points), points)
        if isinstance(domain, (IPv4Domain, DiscreteDomain)):
            points = list(points)
            return self.mass_many([0] * len(points), points)
        raise TypeError("cdf queries require a one-dimensional ordered domain")

    def marginal(self, axis: int, bins: int = 32) -> np.ndarray:
        """One-dimensional marginal histogram for a vector domain.

        Returns the probability mass of ``bins`` equal-width slabs along
        ``axis`` (normalised coordinates for geographic domains).
        """
        if not isinstance(self.domain, (Hypercube, GeoDomain)):
            raise TypeError("marginals require a vector-valued domain")
        dimension = self._table.dimension
        if not 0 <= axis < dimension:
            raise ValueError(f"axis must lie in [0, {dimension}), got {axis}")
        if bins < 1:
            raise ValueError(f"bins must be positive, got {bins}")
        return self._table.marginal(axis, bins)
