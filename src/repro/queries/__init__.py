"""Query answering on top of the private synthetic generator.

The paper's motivation for synthetic data over special-purpose private data
structures is query *flexibility*: "this synthetic data can be used for any
downstream task without additional privacy costs" (Section 1).  This package
makes that concrete by answering standard analytic queries directly from the
released partition tree (equivalently, from the synthetic distribution):

* :mod:`repro.queries.range_queries` -- mass / count of axis-aligned boxes,
  intervals, CIDR blocks and index ranges.
* :mod:`repro.queries.quantiles` -- quantile and CDF functions on ordered
  (one-dimensional) domains.
* :mod:`repro.queries.workload` -- random query workloads and error
  evaluation against the true data, used by the range-query benchmark.

All answers are post-processing of the epsilon-DP release, so they consume no
additional privacy budget.
"""

from repro.queries.range_queries import RangeQueryEngine
from repro.queries.quantiles import QuantileEngine
from repro.queries.workload import (
    RangeQuery,
    evaluate_range_workload,
    random_range_queries,
)

__all__ = [
    "QuantileEngine",
    "RangeQuery",
    "RangeQueryEngine",
    "evaluate_range_workload",
    "random_range_queries",
]
