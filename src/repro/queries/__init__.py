"""Query answering on top of the private synthetic generator.

The paper's motivation for synthetic data over special-purpose private data
structures is query *flexibility*: "this synthetic data can be used for any
downstream task without additional privacy costs" (Section 1).  This package
makes that concrete by answering standard analytic queries directly from the
released partition tree (equivalently, from the synthetic distribution):

* :mod:`repro.queries.range_queries` -- mass / count of axis-aligned boxes,
  intervals, CIDR blocks and index ranges.
* :mod:`repro.queries.quantiles` -- quantile and CDF functions on ordered
  (one-dimensional) domains.
* :mod:`repro.queries.workload` -- random query workloads and error
  evaluation against the true data, used by the range-query benchmark.
* :mod:`repro.queries.support` -- which query types each domain supports,
  shared by the release surface and the serving layer.

All answers are post-processing of the epsilon-DP release, so they consume no
additional privacy budget.  :class:`repro.api.release.Release` exposes these
engines directly (``release.mass(...)``, ``release.quantile(...)``), and
:mod:`repro.serve` serves them over HTTP and batch workload files.
"""

from repro.queries.range_queries import RangeQueryEngine
from repro.queries.quantiles import QuantileEngine
from repro.queries.support import QUERY_TYPES, supported_queries, supports_query
from repro.queries.workload import (
    RangeQuery,
    evaluate_range_workload,
    random_range_queries,
)

__all__ = [
    "QUERY_TYPES",
    "QuantileEngine",
    "RangeQuery",
    "RangeQueryEngine",
    "evaluate_range_workload",
    "random_range_queries",
    "supported_queries",
    "supports_query",
]
