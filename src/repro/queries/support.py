"""Which query types each domain supports.

The query engines themselves raise ``TypeError`` when asked something a domain
cannot answer (a CDF needs an ordering, a marginal needs axes); this module is
the *declarative* version of that knowledge, so the release surface, the
serving layer and the documentation can list capabilities without trial and
error.

Example:
    >>> from repro.domain.interval import UnitInterval
    >>> from repro.queries.support import supported_queries
    >>> supported_queries(UnitInterval())
    ('mass', 'range_count', 'cdf', 'quantile')
"""

from __future__ import annotations

from repro.domain.base import Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain

__all__ = ["QUERY_TYPES", "supported_queries", "supports_query"]

#: Every query type the serving layer understands, in documentation order.
QUERY_TYPES: tuple[str, ...] = ("mass", "range_count", "cdf", "quantile", "marginal")

#: Queries answerable on one-dimensional ordered domains (a total order gives
#: a CDF and therefore quantiles).
_ORDERED = ("mass", "range_count", "cdf", "quantile")

#: Queries answerable on vector-valued domains (axes give marginals, but no
#: single total order gives a CDF).
_VECTOR = ("mass", "range_count", "marginal")


def supported_queries(domain: Domain) -> tuple[str, ...]:
    """The query types answerable on ``domain``, in :data:`QUERY_TYPES` order.

    Example:
        >>> from repro.domain.hypercube import Hypercube
        >>> supported_queries(Hypercube(3))
        ('mass', 'range_count', 'marginal')
    """
    if isinstance(domain, (UnitInterval, IPv4Domain, DiscreteDomain)):
        return _ORDERED
    if isinstance(domain, (Hypercube, GeoDomain)):
        return _VECTOR
    return ()


def supports_query(domain: Domain, query_type: str) -> bool:
    """Whether ``query_type`` is answerable on ``domain``.

    Example:
        >>> from repro.domain.geo import GeoDomain
        >>> supports_query(GeoDomain(), "quantile")
        False
    """
    return query_type in supported_queries(domain)
