"""Compiled leaf and node tables: the tree flattened into contiguous arrays.

The scalar query engines walked Python dicts -- one loop iteration per leaf
per query, which capped warm serving at a few hundred queries per second.
This module compiles a :class:`~repro.core.tree.PartitionTree` once, at
engine construction, into contiguous numpy arrays so that every query after
that is pure array arithmetic:

* :class:`CompiledLeafTable` -- per-leaf probabilities plus per-domain cell
  geometry (interval endpoints, per-axis box corners, or integer ranges) in
  the engine's canonical leaf order, with a prefix-sum/CDF array over the
  ordered-domain leaf order for diagnostics and inverse-CDF seeding.  The
  ``mass_many`` / ``marginal`` kernels evaluate whole query batches in one
  vectorised pass.
* :class:`CompiledDescentTable` -- the root-to-leaf branching structure as
  index arrays (left/right child, left-child count, leaf payloads), so a
  batch of quantile probabilities descends level-synchronously: one numpy
  pass per tree level for the *entire* batch instead of one Python descent
  per probability.

Byte-identical contract
-----------------------
Every kernel reproduces the retired scalar loops bit for bit: terms are
accumulated sequentially (``np.cumsum``, which sums left to right, not
``np.sum``'s pairwise reduction), per-axis box fractions multiply in axis
order, integer overlaps divide with the same int64 -> float64 true division,
and the quantile descent performs the same compare/subtract sequence per
probability.  ``tests/test_queries_vectorized.py`` pins the equality against
reference implementations of the old loops on randomised trees over all five
domains.

Example:
    >>> from repro.queries.compiled import CompiledLeafTable
    >>> from repro.baselines.pmm import build_exact_tree
    >>> from repro.domain.interval import UnitInterval
    >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
    >>> table = CompiledLeafTable(tree, UnitInterval())
    >>> table.probabilities
    array([0.25, 0.25, 0.25, 0.25])
    >>> import numpy as np
    >>> table.mass_many(np.asarray([0.0, 0.5]), np.asarray([0.5, 1.0]))
    array([0.5, 0.5])
"""

from __future__ import annotations

import numpy as np

from repro.core.tree import PartitionTree
from repro.domain.base import Cell, Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain

__all__ = ["CompiledLeafTable", "CompiledDescentTable"]

#: Bound on the elements of one temporary (queries x leaves) block so that
#: arbitrarily large batches evaluate in bounded memory (~32 MB per block).
_BLOCK_ELEMENTS = 1 << 22


def _sequential_sum(terms: np.ndarray, axis: int = -1) -> np.ndarray:
    """Left-to-right float accumulation starting from +0.0.

    Matches ``total = 0.0; for t in terms: total += t`` bit for bit (numpy's
    ``cumsum`` accumulates sequentially, unlike ``np.sum``'s pairwise
    reduction).  The prepended zero pins the scalar loops' ``total = 0.0``
    start, so an all ``-0.0`` term row still sums to ``+0.0``.
    """
    shape = list(terms.shape)
    shape[axis] = 1
    padded = np.concatenate([np.zeros(shape), terms], axis=axis)
    return np.take(np.cumsum(padded, axis=axis), -1, axis=axis)


class CompiledLeafTable:
    """Per-leaf probabilities and cell geometry as contiguous arrays.

    ``kind`` selects the geometry layout:

    * ``"interval"`` -- scalar dyadic cells: ``low``/``high``/``width`` are
      ``(L,)`` float arrays.
    * ``"box"`` -- vector cells: ``low``/``high``/``width`` are ``(L, d)``
      float arrays (normalised coordinates for :class:`GeoDomain`).
    * ``"intrange"`` -- integer cells: ``low``/``high`` are ``(L,)`` int64
      arrays of inclusive ranges (``low > high`` marks an empty cell).
    """

    def __init__(self, tree: PartitionTree, domain: Domain) -> None:
        self.domain = domain
        self.root_count = float(tree.root_count)
        leaves = tree.leaves()
        weights = np.array([max(tree.count(theta), 0.0) for theta in leaves])
        total = float(weights.sum())
        if total <= 0:
            # Degenerate release: the retired scalar engine fell back to a
            # single root "leaf" carrying the whole mass (the uniform law).
            self.leaves: tuple[Cell, ...] | None = ((),)
            self.probabilities = np.array([1.0])
        else:
            self.leaves = tuple(leaves)
            self.probabilities = weights / total
        self.size = len(self.probabilities)
        self._positive = self.probabilities > 0
        self._compile_geometry(domain)
        self._compile_cdf(domain)

    @classmethod
    def from_arrays(cls, domain: Domain, *, kind: str, root_count: float, arrays: dict) -> "CompiledLeafTable":
        """Rebuild a table from :meth:`export_arrays` output (mmap-friendly).

        The arrays are used as-is (read-only memory-mapped views are fine:
        the kernels never write into them), so loading a persisted table is
        O(1) in the number of leaves -- no tree walk, no geometry recompute.
        Derived state (``width``, the positive-probability mask) is recomputed
        with the same expressions compilation uses, so a rebuilt table answers
        queries bit-identically to one compiled from the tree.
        """
        if kind not in ("interval", "box", "intrange"):
            raise ValueError(f"unknown compiled leaf-table kind {kind!r}")
        table = cls.__new__(cls)
        table.domain = domain
        table.root_count = float(root_count)
        table.leaves = None  # leaf cells live in the tree; not needed to query
        table.kind = kind
        try:
            table.probabilities = arrays["probabilities"]
            table.low = arrays["low"]
            table.high = arrays["high"]
        except KeyError as error:
            raise ValueError(f"compiled leaf table is missing the {error} array") from error
        table.size = len(table.probabilities)
        if kind == "box":
            if table.low.ndim != 2:
                raise ValueError("box leaf tables need two-dimensional bound arrays")
            table.dimension = int(table.low.shape[1])
        if kind in ("interval", "box"):
            table.width = table.high - table.low
        if table.low.shape != table.high.shape or len(table.low) != table.size:
            raise ValueError("compiled leaf-table arrays disagree on the leaf count")
        table._positive = table.probabilities > 0
        if "cdf" in arrays or "leaf_order" in arrays:
            try:
                table.leaf_order = arrays["leaf_order"]
                table.cdf = arrays["cdf"]
            except KeyError as error:
                raise ValueError(f"compiled leaf table is missing the {error} array") from error
            if len(table.cdf) != table.size or len(table.leaf_order) != table.size:
                raise ValueError("compiled CDF arrays disagree on the leaf count")
        else:
            table.leaf_order = None
            table.cdf = None
        return table

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The table's persistent arrays, keyed by :meth:`from_arrays` names."""
        arrays = {"probabilities": self.probabilities, "low": self.low, "high": self.high}
        if self.cdf is not None:
            arrays["leaf_order"] = self.leaf_order
            arrays["cdf"] = self.cdf
        return arrays

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def _compile_geometry(self, domain: Domain) -> None:
        if isinstance(domain, UnitInterval):
            self.kind = "interval"
            bounds = [domain.cell_bounds(theta) for theta in self.leaves]
            self.low = np.array([b[0] for b in bounds])
            self.high = np.array([b[1] for b in bounds])
            self.width = self.high - self.low
        elif isinstance(domain, (Hypercube, GeoDomain)):
            self.kind = "box"
            self.dimension = 2 if isinstance(domain, GeoDomain) else domain.dimension
            bounds = [domain.cell_bounds(theta) for theta in self.leaves]
            self.low = np.array([b[0] for b in bounds], dtype=float).reshape(
                self.size, self.dimension
            )
            self.high = np.array([b[1] for b in bounds], dtype=float).reshape(
                self.size, self.dimension
            )
            self.width = self.high - self.low
        elif isinstance(domain, (IPv4Domain, DiscreteDomain)):
            self.kind = "intrange"
            ranges = [domain.cell_range(theta) for theta in self.leaves]
            self.low = np.array([r[0] for r in ranges], dtype=np.int64)
            self.high = np.array([r[1] for r in ranges], dtype=np.int64)
        else:
            raise TypeError(
                f"range queries are not supported on {type(domain).__name__}"
            )

    def _compile_cdf(self, domain: Domain) -> None:
        """Prefix-sum/CDF array over the ordered-domain leaf order.

        For one-dimensional ordered domains the leaves partition the domain
        left to right; sorting the prefix-free cell indices
        lexicographically *is* the domain order, so ``cdf[j]`` is the
        released probability mass at or below the ``j``-th leaf's upper
        endpoint.  Vector domains have no total order and carry no CDF.
        """
        if isinstance(domain, (UnitInterval, IPv4Domain, DiscreteDomain)):
            order = sorted(range(self.size), key=lambda j: self.leaves[j])
            self.leaf_order = np.array(order, dtype=np.int64)
            self.cdf = np.cumsum(self.probabilities[self.leaf_order])
        else:
            self.leaf_order = None
            self.cdf = None

    # ------------------------------------------------------------------ #
    # kernels
    # ------------------------------------------------------------------ #
    def mass_many(self, lowers: np.ndarray, uppers: np.ndarray) -> np.ndarray:
        """Probability mass of ``N`` regions in one vectorised pass.

        ``lowers``/``uppers`` are already canonical for the table's kind:
        ``(N,)`` floats for intervals, ``(N, d)`` normalised floats for
        boxes, ``(N,)`` int64 for integer ranges.  Row ``i`` of the result
        is bit-identical to the retired scalar ``mass`` on query ``i``.
        """
        count = len(lowers)
        result = np.empty(count)
        block = max(1, _BLOCK_ELEMENTS // max(self.size, 1))
        for start in range(0, count, block):
            stop = min(start + block, count)
            fractions = self._fractions(lowers[start:stop], uppers[start:stop])
            terms = np.where(
                self._positive[None, :], self.probabilities[None, :] * fractions, 0.0
            )
            totals = _sequential_sum(terms, axis=1)
            result[start:stop] = np.minimum(np.maximum(totals, 0.0), 1.0)
        return result

    def _fractions(self, lowers, uppers) -> np.ndarray:
        """Fraction of each leaf cell covered by each query region: (N, L)."""
        if self.kind == "interval":
            overlap = np.maximum(
                0.0,
                np.minimum(self.high[None, :], uppers[:, None])
                - np.maximum(self.low[None, :], lowers[:, None]),
            )
            valid = self.width > 0
            with np.errstate(divide="ignore", invalid="ignore"):
                fractions = overlap / self.width[None, :]
            return np.where(valid[None, :], fractions, 0.0)
        if self.kind == "box":
            # Multiply per-axis coverage in axis order, exactly like the
            # scalar loop's running ``fraction *= overlap / width``; any
            # degenerate axis zeroes the whole leaf (the scalar early
            # return).
            n = len(lowers)
            fractions = np.ones((n, self.size))
            degenerate = np.zeros(self.size, dtype=bool)
            for axis in range(self.dimension):
                width = self.width[:, axis]
                valid = width > 0
                degenerate |= ~valid
                overlap = np.maximum(
                    0.0,
                    np.minimum(self.high[None, :, axis], uppers[:, None, axis])
                    - np.maximum(self.low[None, :, axis], lowers[:, None, axis]),
                )
                with np.errstate(divide="ignore", invalid="ignore"):
                    ratio = overlap / width[None, :]
                fractions = fractions * np.where(valid[None, :], ratio, 0.0)
            return np.where(degenerate[None, :], 0.0, fractions)
        # intrange
        overlap = np.maximum(
            0,
            np.minimum(self.high[None, :], uppers[:, None])
            - np.maximum(self.low[None, :], lowers[:, None])
            + 1,
        )
        size = self.high - self.low + 1
        valid = self.low <= self.high
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = overlap / np.where(valid, size, 1)[None, :]
        return np.where(valid[None, :], fractions, 0.0)

    def marginal(self, axis: int, bins: int) -> np.ndarray:
        """One-dimensional marginal histogram for box tables: (bins,).

        Bit-identical to the retired scalar loop: the per-leaf term is
        ``(probability * overlap) / width`` (that exact association order)
        and bins accumulate leaf by leaf in table order.
        """
        edges = np.linspace(0.0, 1.0, bins + 1)
        cell_low = self.low[:, axis]
        cell_high = self.high[:, axis]
        width = self.width[:, axis]
        overlap = np.maximum(
            0.0,
            np.minimum(cell_high[:, None], edges[None, 1:])
            - np.maximum(cell_low[:, None], edges[None, :-1]),
        )
        valid = self._positive & (width > 0)
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = (self.probabilities[:, None] * overlap) / width[:, None]
        terms = np.where(valid[:, None], terms, 0.0)
        return _sequential_sum(terms, axis=0)


class CompiledDescentTable:
    """The tree's branching structure flattened for batch quantile descent.

    Node ``0`` is the root.  ``internal[i]`` mirrors the scalar descent's
    ``tree.has_children(theta)`` check; internal nodes carry both child
    indices (children are materialised even when the tree does not store
    them, matching ``tree.get(child, 0.0)``), and every node carries
    ``left_count`` -- ``max(count(left child), 0.0)`` -- which is the only
    number the descent compares against.
    """

    def __init__(self, tree: PartitionTree, domain: Domain) -> None:
        self.domain = domain
        # The scalar descent multiplied by ``max(root_count, 0.0)``.
        self.root_count = max(float(tree.root_count), 0.0)
        cells: list[Cell] = [()]
        internal: list[bool] = []
        left_index: list[int] = []
        right_index: list[int] = []
        left_count: list[float] = []
        cursor = 0
        while cursor < len(cells):
            theta = cells[cursor]
            if tree.has_children(theta):
                internal.append(True)
                left, right = theta + (0,), theta + (1,)
                left_index.append(len(cells))
                cells.append(left)
                right_index.append(len(cells))
                cells.append(right)
                left_count.append(max(tree.get(left, 0.0), 0.0))
            else:
                internal.append(False)
                left_index.append(cursor)
                right_index.append(cursor)
                left_count.append(0.0)
            cursor += 1
        self.cells = tuple(cells)
        self.internal = np.array(internal, dtype=bool)
        self.left_index = np.array(left_index, dtype=np.int64)
        self.right_index = np.array(right_index, dtype=np.int64)
        self.left_count = np.array(left_count)
        self.leaf_count = np.array([max(tree.get(theta, 0.0), 0.0) for theta in cells])
        self.depth = max((len(theta) for theta in cells), default=0)
        self._compile_points(domain)
        # Plain-Python mirrors for the scalar fast path (list indexing beats
        # numpy scalar extraction for a single root-to-leaf walk).
        self._py_internal = self.internal.tolist()
        self._py_left_index = self.left_index.tolist()
        self._py_right_index = self.right_index.tolist()
        self._py_left_count = self.left_count.tolist()
        self._py_leaf_count = self.leaf_count.tolist()

    @classmethod
    def from_arrays(cls, domain: Domain, *, root_count: float, arrays: dict) -> "CompiledDescentTable":
        """Rebuild a descent table from :meth:`export_arrays` output.

        Node cells are reconstructed from the child-index arrays (children
        are always appended after their parent, so one forward pass works),
        and the plain-Python mirrors are re-materialised; every stored array
        is used as-is, so read-only memory-mapped sections are fine.
        """
        table = cls.__new__(cls)
        table.domain = domain
        table.root_count = float(root_count)
        try:
            table.internal = arrays["internal"]
            table.left_index = arrays["left_index"]
            table.right_index = arrays["right_index"]
            table.left_count = arrays["left_count"]
            table.leaf_count = arrays["leaf_count"]
            table.low = arrays["low"]
            table.high = arrays["high"]
        except KeyError as error:
            raise ValueError(f"compiled descent table is missing the {error} array") from error
        size = len(table.internal)
        for name in ("left_index", "right_index", "left_count", "leaf_count", "low", "high"):
            if len(arrays[name]) != size:
                raise ValueError("compiled descent-table arrays disagree on the node count")
        table.integer = table.low.dtype.kind in "iu"
        table._py_internal = table.internal.tolist()
        table._py_left_index = table.left_index.tolist()
        table._py_right_index = table.right_index.tolist()
        table._py_left_count = table.left_count.tolist()
        table._py_leaf_count = table.leaf_count.tolist()
        table._py_low = table.low.tolist()
        table._py_high = table.high.tolist()
        # Rebuild the node cells exactly as compilation appended them: the
        # root is node 0 and both children of an internal node carry indices
        # greater than their parent's.
        cells: list[Cell | None] = [None] * size
        if size:
            cells[0] = ()
        for node in range(size):
            if not table._py_internal[node]:
                continue
            theta = cells[node]
            left = table._py_left_index[node]
            right = table._py_right_index[node]
            if theta is None or not node < left < size or not node < right < size:
                raise ValueError("compiled descent-table child indices are not a valid tree")
            cells[left] = theta + (0,)
            cells[right] = theta + (1,)
        if any(theta is None for theta in cells):
            raise ValueError("compiled descent-table child indices leave unreachable nodes")
        table.cells = tuple(cells)
        table.depth = max((len(theta) for theta in table.cells), default=0)
        return table

    def export_arrays(self) -> dict[str, np.ndarray]:
        """The table's persistent arrays, keyed by :meth:`from_arrays` names."""
        return {
            "internal": self.internal,
            "left_index": self.left_index,
            "right_index": self.right_index,
            "left_count": self.left_count,
            "leaf_count": self.leaf_count,
            "low": self.low,
            "high": self.high,
        }

    def _compile_points(self, domain: Domain) -> None:
        if isinstance(domain, UnitInterval):
            self.integer = False
            bounds = [domain.cell_bounds(theta) for theta in self.cells]
            self.low = np.array([b[0] for b in bounds])
            self.high = np.array([b[1] for b in bounds])
            self._py_low = self.low.tolist()
            self._py_high = self.high.tolist()
        else:
            self.integer = True
            ranges = [domain.cell_range(theta) for theta in self.cells]
            self.low = np.array([r[0] for r in ranges], dtype=np.int64)
            self.high = np.array([r[1] for r in ranges], dtype=np.int64)
            self._py_low = self.low.tolist()
            self._py_high = self.high.tolist()

    # ------------------------------------------------------------------ #
    # scalar walk (single probability)
    # ------------------------------------------------------------------ #
    def descend(self, probability: float) -> tuple[int, float]:
        """One root-to-leaf walk; returns (node index, remaining mass).

        The same compare/subtract sequence as the retired per-query loop,
        over list-backed node arrays instead of dict lookups.
        """
        remaining = probability * self.root_count
        node = 0
        while self._py_internal[node]:
            count = self._py_left_count[node]
            if count >= remaining:
                node = self._py_left_index[node]
            else:
                remaining -= count
                node = self._py_right_index[node]
        return node, remaining

    # ------------------------------------------------------------------ #
    # batch walk (many probabilities, level-synchronous)
    # ------------------------------------------------------------------ #
    def descend_many(self, probabilities: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Descend the whole batch one level per numpy pass.

        Each lane performs exactly the scalar walk's arithmetic (same
        compares, same sequential subtractions), so the landing node and
        remaining mass are bit-identical per probability.
        """
        remaining = probabilities * self.root_count
        nodes = np.zeros(len(probabilities), dtype=np.int64)
        for _ in range(self.depth):
            active = self.internal[nodes]
            if not active.any():
                break
            counts = self.left_count[nodes]
            go_left = counts >= remaining
            go_right = active & ~go_left
            remaining = np.where(go_right, remaining - counts, remaining)
            nodes = np.where(
                active,
                np.where(go_left, self.left_index[nodes], self.right_index[nodes]),
                nodes,
            )
        return nodes, remaining

    def interpolate_many(self, nodes: np.ndarray, remaining: np.ndarray) -> np.ndarray:
        """Quantile representatives for the landed nodes, vectorised.

        Mirrors the scalar tail of the descent exactly: an empty leaf
        answers its cell's upper point; otherwise the point ``remaining /
        leaf_count`` (clamped to [0, 1]) of the way through the cell --
        linear interpolation for intervals, nearest integer (banker's
        rounding, like :func:`round`) for integer domains.
        """
        counts = self.leaf_count[nodes]
        populated = counts > 0
        fraction = remaining / np.where(populated, counts, 1.0)
        fraction = np.minimum(np.maximum(fraction, 0.0), 1.0)
        low = self.low[nodes]
        high = self.high[nodes]
        if not self.integer:
            return np.where(populated, low + fraction * (high - low), high)
        rounded = np.rint(low + fraction * (high - low)).astype(np.int64)
        interpolated = np.where(low > high, low, rounded)
        return np.where(populated, interpolated, high)
