"""repro: a reproduction of "Private Synthetic Data Generation in Bounded Memory".

The package implements PrivHP -- a one-pass, bounded-memory, epsilon-
differentially-private synthetic data generator over arbitrary metric-space
domains -- together with every substrate it depends on (private sketches, the
partition tree, consistency enforcement, budget allocation), the baselines it
is compared against (PMM, SRRW, Smooth, PrivTree, DP quantiles), utility
metrics (1-Wasserstein distances, tail norms) and the experiment harness that
regenerates the paper's Table 1 and trade-off analyses.

Quickstart::

    import numpy as np
    from repro import PrivHP, PrivHPConfig, UnitInterval

    data = np.random.default_rng(0).beta(2, 5, size=5000)
    config = PrivHPConfig.from_stream_size(len(data), epsilon=1.0, pruning_k=8, seed=0)
    generator = PrivHP(UnitInterval(), config).process(data).finalize()
    synthetic = generator.sample(5000)
"""

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain import (
    DiscreteDomain,
    Domain,
    GeoDomain,
    Hypercube,
    IPv4Domain,
    UnitInterval,
)
from repro.metrics.wasserstein import empirical_wasserstein
from repro.metrics.tail import tail_norm

__version__ = "1.0.0"

__all__ = [
    "DiscreteDomain",
    "Domain",
    "GeoDomain",
    "Hypercube",
    "IPv4Domain",
    "PartitionTree",
    "PrivHP",
    "PrivHPConfig",
    "SyntheticDataGenerator",
    "UnitInterval",
    "empirical_wasserstein",
    "tail_norm",
    "__version__",
]
