"""repro: a reproduction of "Private Synthetic Data Generation in Bounded Memory".

The package implements PrivHP -- a one-pass, bounded-memory, epsilon-
differentially-private synthetic data generator over arbitrary metric-space
domains -- together with every substrate it depends on (private sketches, the
partition tree, consistency enforcement, budget allocation), the baselines it
is compared against (PMM, SRRW, Smooth, PrivTree, DP quantiles), utility
metrics (1-Wasserstein distances, tail norms) and the experiment harness that
regenerates the paper's Table 1 and trade-off analyses.

The public surface is the Summarizer/Release split of :mod:`repro.api`:
a fluent builder resolves the paper defaults, ``update_batch`` ingests the
stream in vectorised batches, and ``release()`` returns a
:class:`~repro.api.release.Release` bundling the synthetic data generator
with its privacy and memory metadata.  Raw shard summaries merge linearly
(noise is injected exactly once at the merged release) and full mid-stream
state checkpoints through :mod:`repro.io`.

Released summaries also answer analytic queries directly -- range counts,
CDFs, quantiles, marginals (:mod:`repro.queries`) -- and :mod:`repro.serve`
serves whole directories of them over JSON/HTTP and batch workload files,
all as zero-budget post-processing.

Quickstart::

    import numpy as np
    from repro import PrivHPBuilder

    data = np.random.default_rng(0).beta(2, 5, size=5000)
    release = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(len(data))
        .seed(0)
        .build()
        .update_batch(data)
        .release()
    )
    synthetic = release.sample(5000)

The original single-shot surface
(``PrivHP(domain, config).process(data).finalize()``) keeps working as a thin
shim over the same machinery.
"""

from repro.api.builder import PrivHPBuilder
from repro.api.registry import make_domain, make_method, register_domain, register_method
from repro.api.release import Release
from repro.api.summarizer import StreamSummarizer
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain import (
    DiscreteDomain,
    Domain,
    GeoDomain,
    Hypercube,
    IPv4Domain,
    UnitInterval,
)
from repro.metrics.wasserstein import empirical_wasserstein
from repro.metrics.tail import tail_norm

__version__ = "1.1.0"

__all__ = [
    "DiscreteDomain",
    "Domain",
    "GeoDomain",
    "Hypercube",
    "IPv4Domain",
    "PartitionTree",
    "PrivHP",
    "PrivHPBuilder",
    "PrivHPConfig",
    "Release",
    "StreamSummarizer",
    "SyntheticDataGenerator",
    "UnitInterval",
    "empirical_wasserstein",
    "make_domain",
    "make_method",
    "register_domain",
    "register_method",
    "tail_norm",
    "__version__",
]
