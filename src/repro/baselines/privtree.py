"""PrivTree: the static adaptive hierarchical decomposition of Zhang et al.

PrivTree grows a decomposition tree adaptively: a node is split whenever its
*biased* noisy count exceeds a threshold, where the bias decreases with depth
to keep the total privacy loss bounded regardless of how deep the recursion
goes.  The paper cites it as the canonical static (full-data-access) private
decomposition that is unsuitable for streaming -- it needs exact counts of
arbitrary cells on demand -- so it serves here both as a baseline generator
and as a reference point for how adaptive splitting behaves without memory
constraints.

Parameters follow the original paper with fanout ``beta = 2``:
``lambda = (2 beta - 1) / ((beta - 1) * epsilon_structure)`` and decay
``delta = lambda * ln(beta)``.  Half the budget drives the structural
decisions and half perturbs the released leaf counts.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import SyntheticDataMethod
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Cell, Domain

__all__ = ["PrivTreeMethod"]


class PrivTreeMethod(SyntheticDataMethod):
    """Adaptive noisy-threshold decomposition with full data access."""

    name = "PrivTree"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        threshold: float = 0.0,
        max_depth: int = 20,
        structure_fraction: float = 0.5,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if not 0 < structure_fraction < 1:
            raise ValueError("structure_fraction must lie strictly between 0 and 1")
        if max_depth < 1:
            raise ValueError(f"max_depth must be at least 1, got {max_depth}")
        self.domain = domain
        self._epsilon = float(epsilon)
        self.threshold = float(threshold)
        self.max_depth = int(max_depth)
        self.structure_fraction = float(structure_fraction)
        self._tree: PartitionTree | None = None

    def fit(self, data, rng: np.random.Generator | int | None = None) -> SyntheticDataGenerator:
        data = list(data)
        if not data:
            raise ValueError("data must be non-empty")
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

        structure_epsilon = self._epsilon * self.structure_fraction
        count_epsilon = self._epsilon - structure_epsilon
        beta = 2.0
        lam = (2.0 * beta - 1.0) / ((beta - 1.0) * structure_epsilon)
        delta = lam * math.log(beta)

        # Exact cell counts are computed lazily per node; PrivTree has full
        # data access so this does not violate any streaming constraint.
        def exact_count(theta: Cell) -> int:
            level = len(theta)
            return sum(1 for point in data if self.domain.locate(point, level) == theta)

        tree = PartitionTree()
        tree.add_node((), 0.0)
        leaves: list[Cell] = []
        frontier: list[Cell] = [()]
        while frontier:
            theta = frontier.pop()
            count = exact_count(theta)
            biased = count - len(theta) * delta
            noisy = biased + generator.laplace(0.0, lam)
            should_split = noisy > self.threshold and len(theta) < self.max_depth
            if should_split:
                for child in (theta + (0,), theta + (1,)):
                    tree.add_node(child, 0.0)
                    frontier.append(child)
            else:
                leaves.append(theta)

        # Release noisy counts for the leaves only, then propagate upwards so
        # the tree carries a consistent measure for the sampler.
        for theta in leaves:
            noisy_count = exact_count(theta) + generator.laplace(0.0, 1.0 / count_epsilon)
            tree.set_count(theta, max(noisy_count, 0.0))
        for level in range(tree.depth() - 1, -1, -1):
            for theta in tree.nodes_at_level(level):
                left, right = theta + (0,), theta + (1,)
                if left in tree and right in tree:
                    tree.set_count(theta, tree.count(left) + tree.count(right))

        self._tree = tree
        return SyntheticDataGenerator(tree, self.domain, rng=generator)

    def memory_words(self) -> int:
        if self._tree is None:
            return 0
        return self._tree.memory_words()
