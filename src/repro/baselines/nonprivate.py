"""Non-private histogram sampler: the utility ceiling for the benchmarks.

This baseline carries no privacy noise at all; it simply bins the data on the
domain's own binary decomposition at a configurable depth and resamples.  Its
Wasserstein distance to the input reflects only the resolution error
``~gamma_depth`` plus resampling variance, so every private method's measured
error can be read as "noise cost above this floor".
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import SyntheticDataMethod
from repro.baselines.pmm import build_exact_tree
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain

__all__ = ["NonPrivateHistogramMethod"]


class NonPrivateHistogramMethod(SyntheticDataMethod):
    """Exact-count histogram over the domain's decomposition (no privacy)."""

    name = "NonPrivate"

    def __init__(self, domain: Domain, depth: int | None = None, max_depth: int = 14) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be at least 1, got {max_depth}")
        self.domain = domain
        self.depth = depth
        self.max_depth = int(max_depth)
        self._tree: PartitionTree | None = None

    @property
    def epsilon(self) -> float:
        """Non-private: infinite budget."""
        return float("inf")

    def _resolve_depth(self, n: int) -> int:
        if self.depth is not None:
            return min(self.depth, self.max_depth)
        return int(min(max(math.ceil(math.log2(max(n, 2))), 1), self.max_depth))

    def fit(self, data, rng: np.random.Generator | int | None = None) -> SyntheticDataGenerator:
        data = list(data)
        if not data:
            raise ValueError("data must be non-empty")
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        depth = self._resolve_depth(len(data))
        tree = build_exact_tree(data, self.domain, depth)
        self._tree = tree
        return SyntheticDataGenerator(tree, self.domain, rng=generator)

    def memory_words(self) -> int:
        if self._tree is None:
            return 0
        return self._tree.memory_words()
