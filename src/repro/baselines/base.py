"""Common protocol for synthetic-data methods plus the PrivHP adapter.

A method owns its parameters; :meth:`SyntheticDataMethod.fit` consumes a
dataset (or stream) and returns a sampler object exposing ``sample(size)``.
After fitting, :meth:`SyntheticDataMethod.memory_words` reports the words of
state the *summary* occupies -- for PrivHP that is the tree plus sketches; for
the static baselines it is whatever structure they must hold to sample, which
is what Table 1's memory column compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.api.summarizer import DEFAULT_BATCH_SIZE, ingest_batches
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.sampler import SyntheticDataGenerator
from repro.domain.base import Domain

__all__ = ["SyntheticDataMethod", "PrivHPMethod", "PrivHPContinualMethod"]


class SyntheticDataMethod(ABC):
    """Protocol shared by PrivHP and every baseline."""

    #: Human-readable name used in result tables.
    name: str = "method"

    @abstractmethod
    def fit(self, data, rng: np.random.Generator | int | None = None):
        """Build the private summary from ``data`` and return a sampler.

        The returned object must expose ``sample(size) -> array``.
        """

    @abstractmethod
    def memory_words(self) -> int:
        """Words of memory held by the fitted summary (0 before fitting)."""

    @property
    def epsilon(self) -> float:
        """Privacy budget of the method; ``inf`` for non-private baselines."""
        return getattr(self, "_epsilon", float("inf"))


class PrivHPMethod(SyntheticDataMethod):
    """Adapter running PrivHP through the common method protocol.

    Parameters mirror :meth:`repro.core.config.PrivHPConfig.from_stream_size`;
    any keyword accepted there can be overridden through ``config_overrides``.
    """

    name = "PrivHP"

    #: Items fed per vectorised ingestion batch during :meth:`fit`.
    batch_size = DEFAULT_BATCH_SIZE

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        pruning_k: int,
        config: PrivHPConfig | None = None,
        stream_size: int | None = None,
        **config_overrides,
    ) -> None:
        self.domain = domain
        self._epsilon = float(epsilon)
        self.pruning_k = int(pruning_k)
        self._explicit_config = config
        self._stream_size = None if stream_size is None else int(stream_size)
        self._config_overrides = config_overrides
        self._last: PrivHP | None = None

    def build_config(self, stream_size: int) -> PrivHPConfig:
        """Resolve the configuration for a stream of the given size."""
        if self._explicit_config is not None:
            return self._explicit_config
        return PrivHPConfig.from_stream_size(
            stream_size=stream_size,
            epsilon=self._epsilon,
            pruning_k=self.pruning_k,
            **self._config_overrides,
        )

    def _resolve_stream_size(self, data) -> int:
        """Stream length without materialising the stream.

        Precedence: the explicit ``stream_size`` constructor argument, then
        ``len(data)`` when the source is sized.  Unsized iterables without an
        explicit size are rejected -- silently calling ``list(data)`` would
        defeat the bounded-memory contract the method exists to demonstrate.
        """
        if self._stream_size is not None:
            return self._stream_size
        try:
            return len(data)
        except TypeError:
            raise ValueError(
                "the data source has no len(); pass stream_size= to "
                "PrivHPMethod so the paper defaults can be resolved without "
                "materialising the stream"
            ) from None

    def fit(self, data, rng: np.random.Generator | int | None = None) -> SyntheticDataGenerator:
        config = (
            self._explicit_config
            if self._explicit_config is not None
            else self.build_config(self._resolve_stream_size(data))
        )
        algorithm = PrivHP(self.domain, config, rng=rng)
        # ingest_batches chunks unsized / forward-only sources lazily, so one
        # call covers arrays and generators alike.
        ingest_batches(algorithm, data, self.batch_size)
        self._last = algorithm
        return algorithm.finalize()

    def memory_words(self) -> int:
        if self._last is None:
            return 0
        return self._last.memory_words()

    @property
    def last_run(self) -> PrivHP | None:
        """The PrivHP instance from the most recent fit (for introspection)."""
        return self._last


class PrivHPContinualMethod(PrivHPMethod):
    """Adapter running continual-observation PrivHP through the method protocol.

    Fits a :class:`repro.continual.privhp.PrivHPContinual` (private at every
    point of the stream) and returns the generator of its final snapshot, so
    the continual variant slots into the same evaluation tables as the
    one-shot methods.  ``horizon`` defaults to the resolved stream size.
    """

    name = "PrivHP-Continual"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        pruning_k: int,
        config: PrivHPConfig | None = None,
        stream_size: int | None = None,
        horizon: int | None = None,
        **config_overrides,
    ) -> None:
        super().__init__(
            domain,
            epsilon,
            pruning_k,
            config=config,
            stream_size=stream_size,
            **config_overrides,
        )
        self._horizon = None if horizon is None else int(horizon)

    def _build_continual(self, stream_size: int, rng):
        from repro.continual.privhp import PrivHPContinual

        if self._explicit_config is not None and self._horizon is not None:
            config, horizon = self._explicit_config, self._horizon
        else:
            config = (
                self._explicit_config
                if self._explicit_config is not None
                else self.build_config(stream_size)
            )
            horizon = self._horizon if self._horizon is not None else stream_size
        return PrivHPContinual(self.domain, config, horizon=horizon, rng=rng)

    def fit(self, data, rng: np.random.Generator | int | None = None) -> SyntheticDataGenerator:
        algorithm = self._build_continual(self._resolve_stream_size(data), rng)
        ingest_batches(algorithm, data, self.batch_size)
        self._last = algorithm
        return algorithm.snapshot().generator

    def fit_trajectory(self, epochs, rng: np.random.Generator | int | None = None):
        """Ingest epoch arrays in order, yielding a snapshot sampler per epoch.

        This is the hook :func:`repro.metrics.evaluation.evaluate_method_trajectory`
        dispatches on: the continual summarizer is private at every stream
        point, so snapshotting at each epoch boundary costs no extra budget
        and exposes how the method tracks a drifting distribution.
        """
        epochs = [np.asarray(epoch) for epoch in epochs]
        total = int(sum(len(epoch) for epoch in epochs))
        stream_size = self._stream_size if self._stream_size is not None else total
        algorithm = self._build_continual(max(stream_size, total), rng)
        self._last = algorithm
        for epoch in epochs:
            if len(epoch):
                ingest_batches(algorithm, epoch, self.batch_size)
            yield algorithm.snapshot().generator
