"""Common protocol for synthetic-data methods plus the PrivHP adapter.

A method owns its parameters; :meth:`SyntheticDataMethod.fit` consumes a
dataset (or stream) and returns a sampler object exposing ``sample(size)``.
After fitting, :meth:`SyntheticDataMethod.memory_words` reports the words of
state the *summary* occupies -- for PrivHP that is the tree plus sketches; for
the static baselines it is whatever structure they must hold to sample, which
is what Table 1's memory column compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.core.sampler import SyntheticDataGenerator
from repro.domain.base import Domain

__all__ = ["SyntheticDataMethod", "PrivHPMethod"]


class SyntheticDataMethod(ABC):
    """Protocol shared by PrivHP and every baseline."""

    #: Human-readable name used in result tables.
    name: str = "method"

    @abstractmethod
    def fit(self, data, rng: np.random.Generator | int | None = None):
        """Build the private summary from ``data`` and return a sampler.

        The returned object must expose ``sample(size) -> array``.
        """

    @abstractmethod
    def memory_words(self) -> int:
        """Words of memory held by the fitted summary (0 before fitting)."""

    @property
    def epsilon(self) -> float:
        """Privacy budget of the method; ``inf`` for non-private baselines."""
        return getattr(self, "_epsilon", float("inf"))


class PrivHPMethod(SyntheticDataMethod):
    """Adapter running PrivHP through the common method protocol.

    Parameters mirror :meth:`repro.core.config.PrivHPConfig.from_stream_size`;
    any keyword accepted there can be overridden through ``config_overrides``.
    """

    name = "PrivHP"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        pruning_k: int,
        config: PrivHPConfig | None = None,
        **config_overrides,
    ) -> None:
        self.domain = domain
        self._epsilon = float(epsilon)
        self.pruning_k = int(pruning_k)
        self._explicit_config = config
        self._config_overrides = config_overrides
        self._last: PrivHP | None = None

    def build_config(self, stream_size: int) -> PrivHPConfig:
        """Resolve the configuration for a stream of the given size."""
        if self._explicit_config is not None:
            return self._explicit_config
        return PrivHPConfig.from_stream_size(
            stream_size=stream_size,
            epsilon=self._epsilon,
            pruning_k=self.pruning_k,
            **self._config_overrides,
        )

    def fit(self, data, rng: np.random.Generator | int | None = None) -> SyntheticDataGenerator:
        data = list(data)
        config = self.build_config(len(data))
        algorithm = PrivHP(self.domain, config, rng=rng)
        algorithm.process(data)
        self._last = algorithm
        return algorithm.finalize()

    def memory_words(self) -> int:
        if self._last is None:
            return 0
        return self._last.memory_words()

    @property
    def last_run(self) -> PrivHP | None:
        """The PrivHP instance from the most recent fit (for introspection)."""
        return self._last
