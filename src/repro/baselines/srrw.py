"""SRRW-style private measure (Boedihardjo, Strohmer & Vershynin).

The original construction perturbs the empirical measure with a
*super-regular random walk*, a correlated noise process whose partial sums
stay ``O(log^{3/2})``, yielding accuracy ``O(log^{3/2}(eps n) (eps n)^{-1/d})``
with memory ``Theta(d n)``.  Reproducing the exact walk is unnecessary for the
Table-1 comparison: what matters is (i) near-optimal accuracy and (ii) memory
proportional to the dataset, both of which are achieved by perturbing the
dyadic prefix structure of the empirical measure with independent per-level
Laplace noise under a *uniform* budget split (the classical hierarchical
mechanism, whose partial-sum error is also polylogarithmic).  DESIGN.md
documents this substitution; the class below implements it, reusing the same
tree machinery as PMM but with the uniform split and no Lagrange optimisation
so the two baselines remain algorithmically distinct.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import SyntheticDataMethod
from repro.baselines.pmm import build_exact_tree
from repro.core.budget import uniform_budgets
from repro.core.consistency import enforce_subtree_consistency
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain

__all__ = ["SRRWMethod"]


class SRRWMethod(SyntheticDataMethod):
    """Dyadic prefix-noise private measure (SRRW stand-in)."""

    name = "SRRW"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        depth: int | None = None,
        max_depth: int = 16,
        apply_consistency: bool = True,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.domain = domain
        self._epsilon = float(epsilon)
        self.depth = depth
        self.max_depth = int(max_depth)
        self.apply_consistency = bool(apply_consistency)
        self._tree: PartitionTree | None = None

    def _resolve_depth(self, n: int) -> int:
        """Depth ``~ log2(eps n)`` capped at ``max_depth``."""
        if self.depth is not None:
            return min(self.depth, self.max_depth)
        level = math.ceil(math.log2(max(self._epsilon * n, 2.0)))
        return int(min(max(level, 1), self.max_depth))

    def fit(self, data, rng: np.random.Generator | int | None = None) -> SyntheticDataGenerator:
        data = list(data)
        if not data:
            raise ValueError("data must be non-empty")
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        depth = self._resolve_depth(len(data))

        tree = build_exact_tree(data, self.domain, depth)
        budgets = uniform_budgets(self._epsilon, depth)
        for level in range(depth + 1):
            scale = 1.0 / budgets[level]
            for theta in tree.nodes_at_level(level):
                tree.increment(theta, float(generator.laplace(0.0, scale)))

        if self.apply_consistency:
            enforce_subtree_consistency(tree, ())
        elif tree.root_count < 0:
            tree.set_count((), 0.0)

        self._tree = tree
        return SyntheticDataGenerator(tree, self.domain, rng=generator)

    def memory_words(self) -> int:
        if self._tree is None:
            return 0
        return self._tree.memory_words()
