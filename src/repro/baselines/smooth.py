"""Smooth: perturbed trigonometric-moment density estimation (Wang et al.).

The smooth-query mechanism of Wang et al. privately releases the low-order
moments of the data and answers any smooth query from them, achieving
``O(eps^{-1} n^{-K/(2d+K)})`` accuracy for queries with bounded order-``K``
partial derivatives while holding ``Theta(d n)`` memory (the raw data during
the single batch pass plus the moment vector).  As a synthetic data generator
we release noisy trigonometric (Fourier) moments up to order ``K`` per axis,
reconstruct a density on a grid, clamp it to be non-negative, renormalise and
sample.  This reproduces the qualitative Table-1 behaviour: accuracy clearly
worse than the hierarchical mechanisms and degrading with dimension.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.baselines.base import SyntheticDataMethod
from repro.domain.base import Domain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval

__all__ = ["SmoothMethod", "GridDensitySampler"]


class GridDensitySampler:
    """Samples from a non-negative density tabulated on a regular grid over [0,1]^d."""

    def __init__(
        self,
        density: np.ndarray,
        rng: np.random.Generator,
        scalar_output: bool,
    ) -> None:
        density = np.asarray(density, dtype=float)
        density = np.clip(density, 0.0, None)
        total = density.sum()
        if total <= 0:
            # Degenerate reconstruction: fall back to the uniform density.
            density = np.ones_like(density)
            total = density.sum()
        self._probabilities = (density / total).ravel()
        self._shape = density.shape
        self._rng = rng
        self._scalar_output = scalar_output

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` points: pick a grid cell, then jitter uniformly inside it."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        flat_indices = self._rng.choice(
            self._probabilities.size, size=size, p=self._probabilities
        )
        cells = np.column_stack(np.unravel_index(flat_indices, self._shape)).astype(float)
        widths = 1.0 / np.array(self._shape, dtype=float)
        points = (cells + self._rng.random(cells.shape)) * widths
        if self._scalar_output:
            return points.ravel()
        return points

    def memory_words(self) -> int:
        """Words used by the tabulated density."""
        return int(self._probabilities.size)


class SmoothMethod(SyntheticDataMethod):
    """Noisy trigonometric-moment density estimator on ``[0,1]^d``."""

    name = "Smooth"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        order: int = 8,
        grid_size: int = 64,
    ) -> None:
        if not isinstance(domain, (Hypercube, UnitInterval)):
            raise TypeError("SmoothMethod only supports [0,1]^d domains")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if order < 1:
            raise ValueError(f"order must be at least 1, got {order}")
        if grid_size < 2:
            raise ValueError(f"grid_size must be at least 2, got {grid_size}")
        self.domain = domain
        self._epsilon = float(epsilon)
        self.order = int(order)
        self.grid_size = int(grid_size)
        self.dimension = 1 if isinstance(domain, UnitInterval) else domain.dimension
        self._sampler: GridDensitySampler | None = None
        self._num_moments = 0

    def _frequency_vectors(self) -> list[tuple[int, ...]]:
        """All non-zero frequency vectors with per-axis order at most ``order``."""
        axis_range = range(-self.order, self.order + 1)
        vectors = [
            vec
            for vec in itertools.product(axis_range, repeat=self.dimension)
            if any(component != 0 for component in vec)
        ]
        # Keep one representative per conjugate pair (the other is implied).
        kept = []
        seen: set[tuple[int, ...]] = set()
        for vec in vectors:
            negated = tuple(-component for component in vec)
            if negated in seen:
                continue
            seen.add(vec)
            kept.append(vec)
        return kept

    def fit(self, data, rng: np.random.Generator | int | None = None) -> GridDensitySampler:
        points = np.asarray(list(data), dtype=float)
        if points.size == 0:
            raise ValueError("data must be non-empty")
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        if points.shape[1] != self.dimension:
            raise ValueError(
                f"expected points of dimension {self.dimension}, got {points.shape[1]}"
            )
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        n = points.shape[0]

        frequencies = self._frequency_vectors()
        self._num_moments = len(frequencies)
        # Each empirical moment has sensitivity 2/n (real and imaginary parts
        # each bounded by 1/n per sample under add/remove, 2/n under swap);
        # the budget is split evenly over all released real numbers.
        per_value_epsilon = self._epsilon / max(2 * self._num_moments, 1)
        noise_scale = 2.0 / (n * per_value_epsilon)

        moments: dict[tuple[int, ...], complex] = {}
        for vec in frequencies:
            phases = 2.0 * np.pi * points @ np.asarray(vec, dtype=float)
            real = float(np.mean(np.cos(phases))) + generator.laplace(0.0, noise_scale)
            imag = float(np.mean(np.sin(phases))) + generator.laplace(0.0, noise_scale)
            moments[vec] = complex(real, imag)

        # Reconstruct the density on a regular grid from the noisy moments.
        axes = [np.linspace(0.0, 1.0, self.grid_size, endpoint=False) + 0.5 / self.grid_size
                for _ in range(self.dimension)]
        mesh = np.meshgrid(*axes, indexing="ij")
        density = np.ones(mesh[0].shape, dtype=float)
        for vec, moment in moments.items():
            phase = np.zeros(mesh[0].shape)
            for axis, component in enumerate(vec):
                phase += component * mesh[axis]
            phase *= 2.0 * np.pi
            density += 2.0 * (moment.real * np.cos(phase) + moment.imag * np.sin(phase))

        sampler = GridDensitySampler(
            density,
            rng=generator,
            scalar_output=isinstance(self.domain, UnitInterval),
        )
        self._sampler = sampler
        return sampler

    def memory_words(self) -> int:
        if self._sampler is None:
            return 0
        # Released state: the moment vector plus the tabulated density.
        return 2 * self._num_moments + self._sampler.memory_words()
