"""Baseline private synthetic data generators compared against PrivHP.

Each baseline implements the common
:class:`~repro.baselines.base.SyntheticDataMethod` protocol so the evaluation
harness and Table-1 benchmark treat them interchangeably:

* :class:`PMMMethod` -- the hierarchical Private Measure Mechanism of
  He et al. (state of the art in the static setting; memory Theta(eps*n)).
* :class:`SRRWMethod` -- a private measure built from noisy dyadic CDF
  increments, standing in for the super-regular random walk construction of
  Boedihardjo et al. (see DESIGN.md for the substitution argument).
* :class:`SmoothMethod` -- perturbed trigonometric-moment density estimation,
  standing in for the smooth-query mechanism of Wang et al.
* :class:`PrivTreeMethod` -- the static adaptive decomposition of Zhang et al.
* :class:`QuantileMethod` -- bounded-space DP quantiles (Alabi et al.) used as
  an inverse-CDF generator on ordered domains.
* :class:`NonPrivateHistogramMethod` -- a non-private reference point.
* :class:`PrivHPMethod` -- adapter exposing PrivHP through the same protocol.
"""

from repro.baselines.base import PrivHPMethod, SyntheticDataMethod
from repro.baselines.nonprivate import NonPrivateHistogramMethod
from repro.baselines.pmm import PMMMethod
from repro.baselines.privtree import PrivTreeMethod
from repro.baselines.quantile import QuantileMethod
from repro.baselines.smooth import SmoothMethod
from repro.baselines.srrw import SRRWMethod

__all__ = [
    "NonPrivateHistogramMethod",
    "PMMMethod",
    "PrivHPMethod",
    "PrivTreeMethod",
    "QuantileMethod",
    "SRRWMethod",
    "SmoothMethod",
    "SyntheticDataMethod",
]
