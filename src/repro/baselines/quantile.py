"""Bounded-space DP quantile generator (Alabi, Ben-Eliezer & Chaturvedi style).

Section 2.2 of the paper notes that a private quantile estimator over a
*finite, ordered* domain can be turned into a synthetic data generator: draw
``u ~ Uniform[0,1]`` and output the ``u``-quantile.  The bounded-space
construction summarises the stream on a fixed grid of ``bins`` cells, releases
noisy cumulative counts, and inverts the resulting monotone CDF.  Memory is
``O(bins)`` regardless of the stream length, so this is the natural
small-memory competitor on one-dimensional ordered domains -- and its
inability to extend to general metric spaces (it has no notion of cells or
diameters beyond the total order) is precisely the limitation PrivHP lifts.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SyntheticDataMethod
from repro.domain.base import Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.interval import UnitInterval

__all__ = ["QuantileMethod", "QuantileSampler"]


class QuantileSampler:
    """Inverse-CDF sampler over a fixed grid of bins on an ordered domain."""

    def __init__(
        self,
        bin_edges: np.ndarray,
        cumulative: np.ndarray,
        rng: np.random.Generator,
        discrete_size: int | None = None,
    ) -> None:
        self._edges = np.asarray(bin_edges, dtype=float)
        self._cumulative = np.asarray(cumulative, dtype=float)
        self._rng = rng
        self._discrete_size = discrete_size

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` points via inverse-CDF sampling with in-bin jitter."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        uniforms = self._rng.random(size)
        bin_indices = np.searchsorted(self._cumulative, uniforms, side="left")
        bin_indices = np.clip(bin_indices, 0, len(self._edges) - 2)
        lower = self._edges[bin_indices]
        upper = self._edges[bin_indices + 1]
        points = lower + (upper - lower) * self._rng.random(size)
        if self._discrete_size is not None:
            points = np.clip(np.floor(points), 0, self._discrete_size - 1).astype(int)
        return points

    def quantile(self, probability: float) -> float:
        """The noisy quantile function at ``probability``."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0,1], got {probability}")
        index = int(np.searchsorted(self._cumulative, probability, side="left"))
        index = min(index, len(self._edges) - 2)
        return float(self._edges[index + 1])

    def memory_words(self) -> int:
        """Words used: the edges plus the cumulative counts."""
        return int(self._edges.size + self._cumulative.size)


class QuantileMethod(SyntheticDataMethod):
    """Noisy-CDF inverse sampling on a bounded number of bins (d=1 only)."""

    name = "DP-Quantile"

    def __init__(self, domain: Domain, epsilon: float, bins: int = 256) -> None:
        if not isinstance(domain, (UnitInterval, DiscreteDomain)):
            raise TypeError("QuantileMethod requires a one-dimensional ordered domain")
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if bins < 2:
            raise ValueError(f"bins must be at least 2, got {bins}")
        self.domain = domain
        self._epsilon = float(epsilon)
        self.bins = int(bins)
        self._sampler: QuantileSampler | None = None

    def fit(self, data, rng: np.random.Generator | int | None = None) -> QuantileSampler:
        values = np.asarray(list(data), dtype=float)
        if values.size == 0:
            raise ValueError("data must be non-empty")
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

        if isinstance(self.domain, DiscreteDomain):
            upper = float(self.domain.size)
            discrete_size = self.domain.size
        else:
            upper = 1.0
            discrete_size = None
        edges = np.linspace(0.0, upper, self.bins + 1)

        counts, _ = np.histogram(values, bins=edges)
        # One element changes exactly one bin count, so sensitivity 1 per bin
        # vector and Laplace(1/eps) noise suffices for the whole histogram.
        noisy = counts + generator.laplace(0.0, 1.0 / self._epsilon, size=counts.shape)
        noisy = np.clip(noisy, 0.0, None)
        total = noisy.sum()
        if total <= 0:
            noisy = np.ones_like(noisy)
            total = noisy.sum()
        cumulative = np.cumsum(noisy) / total

        sampler = QuantileSampler(edges, cumulative, generator, discrete_size=discrete_size)
        self._sampler = sampler
        return sampler

    def memory_words(self) -> int:
        if self._sampler is None:
            return 0
        return self._sampler.memory_words()
