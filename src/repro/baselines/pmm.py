"""PMM: the Private Measure Mechanism of He, Vershynin & Zhu (COLT 2023).

PMM is the state of the art the paper compares against (Table 1): it builds a
*complete* binary hierarchical decomposition of depth ``L ~ log2(eps * n)``
with exact counts at every node, adds Laplace noise with the Lagrange-optimal
per-level budgets, enforces consistency top-down, and samples from the
resulting measure.  Accuracy is ``O(log^2(eps n)/(eps n))`` for d=1 and
``O((eps n)^{-1/d})`` for d>=2 -- but memory is ``Theta(eps n)`` because the
whole tree is materialised, which is exactly the cost PrivHP avoids.

The implementation reuses the same tree / consistency / sampler machinery as
PrivHP so that the comparison isolates the algorithmic difference (pruning +
sketching) rather than implementation details.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.base import SyntheticDataMethod
from repro.core.budget import optimal_budgets, uniform_budgets
from repro.core.consistency import enforce_subtree_consistency
from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain

__all__ = ["PMMMethod", "build_exact_tree"]


def build_exact_tree(data, domain: Domain, depth: int) -> PartitionTree:
    """Complete tree of the given depth holding exact path counts of ``data``."""
    tree = PartitionTree.complete(depth, initial_count=0.0)
    for point in data:
        path = domain.locate(point, depth)
        for level in range(depth + 1):
            tree.increment(path[:level], 1.0)
    return tree


class PMMMethod(SyntheticDataMethod):
    """The full-tree private measure mechanism (no pruning, no sketches)."""

    name = "PMM"

    def __init__(
        self,
        domain: Domain,
        epsilon: float,
        depth: int | None = None,
        max_depth: int = 16,
        budget_allocation: str = "optimal",
        apply_consistency: bool = True,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if max_depth < 1:
            raise ValueError(f"max_depth must be at least 1, got {max_depth}")
        if budget_allocation not in ("optimal", "uniform"):
            raise ValueError(f"unknown budget allocation {budget_allocation!r}")
        self.domain = domain
        self._epsilon = float(epsilon)
        self.depth = depth
        self.max_depth = int(max_depth)
        self.budget_allocation = budget_allocation
        self.apply_consistency = bool(apply_consistency)
        self._tree: PartitionTree | None = None

    def _resolve_depth(self, n: int) -> int:
        """``L = ceil(log2(eps n))`` capped so the tree stays materialisable."""
        if self.depth is not None:
            return min(self.depth, self.max_depth)
        level = math.ceil(math.log2(max(self._epsilon * n, 2.0)))
        return int(min(max(level, 1), self.max_depth))

    def fit(self, data, rng: np.random.Generator | int | None = None) -> SyntheticDataGenerator:
        data = list(data)
        if not data:
            raise ValueError("data must be non-empty")
        generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        depth = self._resolve_depth(len(data))

        tree = build_exact_tree(data, self.domain, depth)

        # Per-level Laplace noise: optimal allocation over exact levels only
        # (the sketch terms of Lemma 5 do not appear because L* = L here).
        if self.budget_allocation == "optimal":
            budgets = optimal_budgets(
                domain=self.domain,
                epsilon=self._epsilon,
                depth=depth,
                level_cutoff=depth,
                pruning_k=1,
                sketch_depth=1,
            )
        else:
            budgets = uniform_budgets(self._epsilon, depth)
        for level in range(depth + 1):
            scale = 1.0 / budgets[level]
            for theta in tree.nodes_at_level(level):
                tree.increment(theta, float(generator.laplace(0.0, scale)))

        if self.apply_consistency:
            enforce_subtree_consistency(tree, ())
        elif tree.root_count < 0:
            tree.set_count((), 0.0)

        self._tree = tree
        return SyntheticDataGenerator(tree, self.domain, rng=generator)

    def memory_words(self) -> int:
        if self._tree is None:
            return 0
        return self._tree.memory_words()
