"""First-class release objects: the sample-side half of the fit/sample split.

A :class:`Release` bundles the released
:class:`~repro.core.sampler.SyntheticDataGenerator` with the privacy and
memory metadata of the run that produced it, and serialises through
:mod:`repro.io.serialization` using the existing ``privhp-generator`` JSON
format (the metadata block carries the extra fields), so releases written by
older versions still load.

Only released (post-noise) state ever reaches a ``Release``; sampling,
querying and serialisation are pure post-processing, so everything here
inherits the epsilon-DP guarantee of the summarizer that produced it.

Beyond sampling, a release answers analytic queries directly (range counts,
CDFs, quantiles, marginals) through lazily constructed
:mod:`repro.queries` engines, which is what the serving layer in
:mod:`repro.serve` builds on.

Example:
    >>> from repro.api.release import Release
    >>> from repro.baselines.pmm import build_exact_tree
    >>> from repro.core.sampler import SyntheticDataGenerator
    >>> from repro.domain.interval import UnitInterval
    >>> tree = build_exact_tree([0.1, 0.3, 0.6, 0.9], UnitInterval(), depth=2)
    >>> release = Release(SyntheticDataGenerator(tree, UnitInterval(), rng=0))
    >>> release.mass(0.0, 0.5)
    0.5
    >>> release.quantile(0.5)
    0.5
"""

from __future__ import annotations

import pathlib
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain
from repro.io.serialization import (
    generator_from_dict,
    generator_to_dict,
    load_release_document,
    save_generator,
)
from repro.queries.quantiles import QuantileEngine
from repro.queries.range_queries import RangeQueryEngine
from repro.queries.support import supported_queries

__all__ = ["Release"]


@dataclass
class Release:
    """A released private summary: generator plus privacy/memory metadata."""

    generator: SyntheticDataGenerator
    epsilon: float = float("inf")
    items_processed: int = 0
    memory_words: int = 0
    metadata: dict = field(default_factory=dict)
    #: Lazily constructed query engines, keyed by engine class name.  They are
    #: derived state (rebuildable, never serialised) and excluded from
    #: equality.  Construction compiles the tree into contiguous leaf/node
    #: tables, so it is expensive enough that concurrent cold starts must not
    #: each build their own copy: ``_engine_lock`` serialises first builds.
    _engines: dict = field(default_factory=dict, init=False, repr=False, compare=False)
    _engine_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------ #
    # sampling (delegates to the generator)
    # ------------------------------------------------------------------ #
    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` synthetic points."""
        return self.generator.sample(size)

    def sample_one(self):
        """Draw a single synthetic point."""
        return self.generator.sample_one()

    def reseed(self, seed: int | np.random.Generator | None) -> "Release":
        """Reseed *sampling only*; the released tree counts are never touched."""
        self.generator.reseed(seed)
        return self

    @property
    def domain(self) -> Domain:
        """The metric domain the synthetic points live in."""
        return self.generator.domain

    @property
    def tree(self) -> PartitionTree:
        """The released (noisy, grown) partition tree."""
        return self.generator.tree

    # ------------------------------------------------------------------ #
    # queries (lazily constructed, cached engines)
    # ------------------------------------------------------------------ #
    def _engine(self, key: str, factory):
        """Double-checked lazy construction of a cached query engine.

        The lock-free fast path serves the (overwhelmingly common) warm
        case; the lock makes a cold release under N concurrent queries
        compile its table exactly once instead of N times racing on
        ``_engines``.
        """
        engine = self._engines.get(key)
        if engine is None:
            with self._engine_lock:
                engine = self._engines.get(key)
                if engine is None:
                    engine = self._engines[key] = factory(self.tree, self.domain)
        return engine

    def range_engine(self) -> RangeQueryEngine:
        """The cached :class:`~repro.queries.range_queries.RangeQueryEngine`.

        Built on first use (the engine compiles the leaf table once) and
        reused by every subsequent range/CDF/marginal query on this release.
        """
        return self._engine("range", RangeQueryEngine)

    def quantile_engine(self) -> QuantileEngine:
        """The cached :class:`~repro.queries.quantiles.QuantileEngine`.

        Raises ``TypeError`` on domains without a total order (hypercubes,
        geographic boxes); see :meth:`supported_queries`.
        """
        return self._engine("quantile", QuantileEngine)

    def supported_queries(self) -> tuple[str, ...]:
        """The query types this release's domain can answer.

        Example:
            >>> from repro.api.release import Release
            >>> from repro.baselines.pmm import build_exact_tree
            >>> from repro.core.sampler import SyntheticDataGenerator
            >>> from repro.domain.interval import UnitInterval
            >>> tree = build_exact_tree([0.2, 0.8], UnitInterval(), depth=1)
            >>> Release(SyntheticDataGenerator(tree, UnitInterval())).supported_queries()
            ('mass', 'range_count', 'cdf', 'quantile')
        """
        return supported_queries(self.domain)

    def mass(self, lower, upper) -> float:
        """Estimated probability mass of the region ``[lower, upper]``.

        For vector domains ``lower``/``upper`` are per-axis bounds of an
        axis-aligned box; for ordered domains they are interval or integer
        range endpoints (inclusive).  Pure post-processing: no privacy budget
        is consumed.
        """
        return self.range_engine().mass(lower, upper)

    def range_count(self, lower, upper) -> float:
        """Estimated number of stream items in ``[lower, upper]``
        (:meth:`mass` scaled by the released total count)."""
        return self.range_engine().count(lower, upper)

    def cdf(self, point) -> float:
        """Estimated CDF at ``point`` (one-dimensional ordered domains only)."""
        return self.range_engine().cdf(point)

    def quantile(self, probability: float):
        """The ``probability``-quantile of the released distribution."""
        return self.quantile_engine().quantile(probability)

    def quantiles(self, probabilities) -> np.ndarray:
        """Vectorised :meth:`quantile` evaluation."""
        return self.quantile_engine().quantiles(probabilities)

    def marginal(self, axis: int, bins: int = 32) -> np.ndarray:
        """One-dimensional marginal histogram along ``axis`` (vector domains)."""
        return self.range_engine().marginal(axis, bins=bins)

    # ------------------------------------------------------------------ #
    # batch queries (one vectorised pass over the compiled leaf table)
    # ------------------------------------------------------------------ #
    def mass_many(self, lowers, uppers) -> np.ndarray:
        """Batch :meth:`mass`: entry ``i`` equals ``mass(lowers[i], uppers[i])``."""
        return self.range_engine().mass_many(lowers, uppers)

    def range_count_many(self, lowers, uppers) -> np.ndarray:
        """Batch :meth:`range_count` in one vectorised pass."""
        return self.range_engine().count_many(lowers, uppers)

    def cdf_many(self, points) -> np.ndarray:
        """Batch :meth:`cdf` in one vectorised pass."""
        return self.range_engine().cdf_many(points)

    # ------------------------------------------------------------------ #
    # copy/pickle: the engine cache and its lock are derived state
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_engines"] = {}
        del state["_engine_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__["_engines"] = {}
        self.__dict__["_engine_lock"] = threading.Lock()

    # ------------------------------------------------------------------ #
    # serialisation through repro.io
    # ------------------------------------------------------------------ #
    def _document_metadata(self) -> dict:
        """The metadata block persisted alongside the generator."""
        metadata = dict(self.metadata)
        metadata.update(
            {
                "epsilon": self.epsilon,
                "items_processed": self.items_processed,
                "memory_words": self.memory_words,
            }
        )
        return metadata

    def to_dict(self) -> dict:
        """Encode as a ``privhp-generator`` document with release metadata."""
        return generator_to_dict(self.generator, metadata=self._document_metadata())

    @classmethod
    def _from_parts(cls, generator: SyntheticDataGenerator, metadata: dict) -> "Release":
        """Build a release from a decoded generator plus its metadata block.

        Splits the release fields out of the metadata exactly like
        :meth:`from_dict`; the binary fast path
        (:func:`repro.io.binary.load_release_binary`) reuses it so both
        loaders agree on field semantics.
        """
        metadata = dict(metadata)
        epsilon = float(metadata.pop("epsilon", float("inf")))
        items_processed = int(metadata.pop("items_processed", 0))
        memory_words = metadata.pop("memory_words", None)
        return cls(
            generator=generator,
            epsilon=epsilon,
            items_processed=items_processed,
            memory_words=int(memory_words) if memory_words is not None else generator.memory_words(),
            metadata=metadata,
        )

    @classmethod
    def from_dict(cls, document: dict, sampling_seed: int | None = None) -> "Release":
        """Decode a document produced by :meth:`to_dict` (or a bare generator
        document from an older version); ``sampling_seed`` reseeds sampling
        only."""
        generator = generator_from_dict(document, seed=sampling_seed)
        return cls._from_parts(generator, document.get("metadata", {}))

    def save(self, path: str | pathlib.Path, *, format: str | None = None) -> pathlib.Path:
        """Write the release to disk and return the path.

        ``format`` is ``"json"`` (the interchange default), ``"binary"``
        (the mmap-loadable envelope of :mod:`repro.io.binary`, which also
        embeds the compiled query tables), or ``None`` to infer from the
        suffix: ``.bin`` writes binary, anything else JSON.
        """
        path = pathlib.Path(path)
        if format is None:
            format = "binary" if path.suffix == ".bin" else "json"
        if format == "binary":
            from repro.io.binary import save_binary

            return save_binary(self.to_dict(), path)
        if format != "json":
            raise ValueError(f"format must be 'json' or 'binary', got {format!r}")
        return save_generator(self.generator, path, metadata=self._document_metadata())

    @classmethod
    def load(cls, path: str | pathlib.Path, sampling_seed: int | None = None) -> "Release":
        """Load a release written by :meth:`save` (or by older ``save_generator``
        callers); ``sampling_seed`` affects future samples only, never the
        persisted tree counts.

        The format is autodetected by magic bytes.  Binary envelopes take the
        mmap fast path (:func:`repro.io.binary.load_release_binary`): query
        engines come pre-seeded straight from the file's compiled sections
        and answer byte-identically to a JSON load.  JSON reading and
        validation go through
        :func:`repro.io.serialization.load_release_document`, so malformed
        files of either format fail with the same ``ValueError`` everywhere.
        """
        from repro.io.binary import detect_format, load_release_binary

        if detect_format(path) == "binary":
            return load_release_binary(path, sampling_seed=sampling_seed)
        return cls.from_dict(load_release_document(path), sampling_seed=sampling_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Release(epsilon={self.epsilon}, items={self.items_processed}, "
            f"memory_words={self.memory_words}, leaves={len(self.tree.leaves())})"
        )
