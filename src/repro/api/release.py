"""First-class release objects: the sample-side half of the fit/sample split.

A :class:`Release` bundles the released
:class:`~repro.core.sampler.SyntheticDataGenerator` with the privacy and
memory metadata of the run that produced it, and serialises through
:mod:`repro.io.serialization` using the existing ``privhp-generator`` JSON
format (the metadata block carries the extra fields), so releases written by
older versions still load.

Only released (post-noise) state ever reaches a ``Release``; sampling and
serialisation are pure post-processing, so everything here inherits the
epsilon-DP guarantee of the summarizer that produced it.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.sampler import SyntheticDataGenerator
from repro.core.tree import PartitionTree
from repro.domain.base import Domain
from repro.io.serialization import (
    generator_from_dict,
    generator_to_dict,
    save_generator,
)

__all__ = ["Release"]


@dataclass
class Release:
    """A released private summary: generator plus privacy/memory metadata."""

    generator: SyntheticDataGenerator
    epsilon: float = float("inf")
    items_processed: int = 0
    memory_words: int = 0
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # sampling (delegates to the generator)
    # ------------------------------------------------------------------ #
    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` synthetic points."""
        return self.generator.sample(size)

    def sample_one(self):
        """Draw a single synthetic point."""
        return self.generator.sample_one()

    def reseed(self, seed: int | np.random.Generator | None) -> "Release":
        """Reseed *sampling only*; the released tree counts are never touched."""
        self.generator.reseed(seed)
        return self

    @property
    def domain(self) -> Domain:
        """The metric domain the synthetic points live in."""
        return self.generator.domain

    @property
    def tree(self) -> PartitionTree:
        """The released (noisy, grown) partition tree."""
        return self.generator.tree

    # ------------------------------------------------------------------ #
    # serialisation through repro.io
    # ------------------------------------------------------------------ #
    def _document_metadata(self) -> dict:
        """The metadata block persisted alongside the generator."""
        metadata = dict(self.metadata)
        metadata.update(
            {
                "epsilon": self.epsilon,
                "items_processed": self.items_processed,
                "memory_words": self.memory_words,
            }
        )
        return metadata

    def to_dict(self) -> dict:
        """Encode as a ``privhp-generator`` document with release metadata."""
        return generator_to_dict(self.generator, metadata=self._document_metadata())

    @classmethod
    def from_dict(cls, document: dict, sampling_seed: int | None = None) -> "Release":
        """Decode a document produced by :meth:`to_dict` (or a bare generator
        document from an older version); ``sampling_seed`` reseeds sampling
        only."""
        generator = generator_from_dict(document, seed=sampling_seed)
        metadata = dict(document.get("metadata", {}))
        epsilon = float(metadata.pop("epsilon", float("inf")))
        items_processed = int(metadata.pop("items_processed", 0))
        memory_words = int(metadata.pop("memory_words", generator.memory_words()))
        return cls(
            generator=generator,
            epsilon=epsilon,
            items_processed=items_processed,
            memory_words=memory_words,
            metadata=metadata,
        )

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the release to a JSON file and return the path."""
        return save_generator(self.generator, path, metadata=self._document_metadata())

    @classmethod
    def load(cls, path: str | pathlib.Path, sampling_seed: int | None = None) -> "Release":
        """Load a release written by :meth:`save` (or by older ``save_generator``
        callers); ``sampling_seed`` affects future samples only, never the
        persisted tree counts."""
        import json

        document = json.loads(pathlib.Path(path).read_text())
        return cls.from_dict(document, sampling_seed=sampling_seed)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"Release(epsilon={self.epsilon}, items={self.items_processed}, "
            f"memory_words={self.memory_words}, leaves={len(self.tree.leaves())})"
        )
