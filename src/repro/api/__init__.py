"""repro.api: the unified Summarizer/Release entry point.

This package is the public surface of the system:

* :class:`~repro.api.summarizer.StreamSummarizer` -- the protocol every
  summarizer satisfies (``update_batch`` / ``merge`` / ``checkpoint`` /
  ``release``).
* :class:`~repro.api.builder.PrivHPBuilder` -- fluent construction: domain +
  budget + paper defaults + overrides, for single summarizers or raw shards.
* :class:`~repro.api.release.Release` -- the released generator bundled with
  its privacy/memory metadata, serialising through :mod:`repro.io`.
* :mod:`~repro.api.registry` -- name registries mapping ``--domain`` /
  ``--method`` style specs to factories, shared by the CLI, the builder and
  the experiment harness.
"""

from repro.api.builder import PrivHPBuilder
from repro.api.registry import (
    available_domains,
    available_methods,
    infer_domain,
    make_domain,
    make_method,
    register_domain,
    register_method,
)
from repro.api.release import Release
from repro.api.summarizer import DEFAULT_BATCH_SIZE, StreamSummarizer, ingest_batches

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "PrivHPBuilder",
    "Release",
    "StreamSummarizer",
    "ingest_batches",
    "available_domains",
    "available_methods",
    "infer_domain",
    "make_domain",
    "make_method",
    "register_domain",
    "register_method",
]
