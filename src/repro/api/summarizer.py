"""The ``StreamSummarizer`` protocol: the contract of the unified entry point.

A stream summarizer is the fit-side half of the fit-then-sample split: it
ingests batches of stream items into a bounded private summary, supports
linear combination of shard summaries, can persist and resume its full
mid-stream state, and releases exactly once into a
:class:`~repro.api.release.Release` that owns the sample-side half.

:class:`repro.core.privhp.PrivHP` is the canonical implementation and
:class:`repro.continual.privhp.PrivHPContinual` the continual-observation one
(same contract, plus anytime ``snapshot()`` releases); any summarizer that
satisfies this protocol plugs into the same CLI, baselines adapter,
experiment harness and serving layer unchanged.
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Protocol, runtime_checkable

__all__ = ["StreamSummarizer", "DEFAULT_BATCH_SIZE", "ingest_batches"]

#: Items fed per vectorised ingestion batch when the caller does not choose.
DEFAULT_BATCH_SIZE = 8192


def ingest_batches(summarizer, data, batch_size: int = DEFAULT_BATCH_SIZE):
    """Feed a data source through ``update_batch`` in bounded chunks.

    The shared chunking loop behind the CLI, the baselines adapter, the
    experiment harness and the examples; returns the summarizer for chaining.
    Sized, sliceable sources (arrays, lists) are chunked by slicing; unsized
    or forward-only iterables (generators, socket readers) are chunked
    lazily, buffering at most ``batch_size`` items at a time, so streaming
    sources never have to be materialised.

    Example:
        >>> import numpy as np
        >>> from repro.api.builder import PrivHPBuilder
        >>> builder = PrivHPBuilder("interval").stream_size(100).seed(0)
        >>> summarizer = ingest_batches(builder.build(), np.linspace(0, 1, 100), batch_size=32)
        >>> summarizer.items_processed
        100
        >>> lazy = (value / 100 for value in range(100))
        >>> ingest_batches(builder.seed(1).build(), lazy, batch_size=32).items_processed
        100
    """
    if batch_size < 1:
        raise ValueError(f"batch size must be at least 1, got {batch_size}")
    if hasattr(data, "__len__") and hasattr(data, "__getitem__"):
        for start in range(0, len(data), batch_size):
            summarizer.update_batch(data[start : start + batch_size])
        return summarizer
    iterator = iter(data)
    while True:
        chunk = list(islice(iterator, batch_size))
        if not chunk:
            return summarizer
        summarizer.update_batch(chunk)


@runtime_checkable
class StreamSummarizer(Protocol):
    """Protocol for batched, mergeable, checkpointable stream summaries.

    Example:
        >>> from repro.api.builder import PrivHPBuilder
        >>> summarizer = PrivHPBuilder("interval").stream_size(100).seed(0).build()
        >>> isinstance(summarizer, StreamSummarizer)
        True
    """

    def update_batch(self, points) -> "StreamSummarizer":
        """Ingest a batch of stream items; returns ``self`` for chaining."""
        ...

    def merge(self, other: "StreamSummarizer") -> "StreamSummarizer":
        """Linear combination of two shard summaries built from one config."""
        ...

    def checkpoint(self) -> dict:
        """A JSON-serialisable snapshot of the full mid-stream state."""
        ...

    def release(self) -> Any:
        """Finish the summary and return the release object (once only)."""
        ...

    @property
    def items_processed(self) -> int:
        """Number of stream items consumed so far."""
        ...

    def memory_words(self) -> int:
        """Words of memory the summary currently occupies."""
        ...
