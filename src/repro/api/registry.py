"""Name registries for domains and synthetic-data methods.

Consumers used to hard-code their own domain construction (the CLI's old
``_make_domain``, ad-hoc ``if dimension == 1`` branches in the experiments);
the registry replaces that with one shared name -> factory mapping that the
CLI flags, the builder and the harness all resolve through.

Domain specs are strings of the form ``name`` or ``name:arg1,arg2,...``::

    make_domain("interval")                  # UnitInterval()
    make_domain("hypercube:3")               # Hypercube(3)
    make_domain("ipv4")                      # IPv4Domain()
    make_domain("geo:24,49,-125,-66")        # GeoDomain(lat/lon bounding box)
    make_domain("discrete:4096")             # DiscreteDomain(4096)
    make_domain("auto", data=array)          # inferred from the data's shape

New domains and methods register through :func:`register_domain` /
:func:`register_method` without touching any consumer.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.domain.base import Domain
from repro.domain.discrete import DiscreteDomain
from repro.domain.geo import GeoDomain
from repro.domain.hypercube import Hypercube
from repro.domain.interval import UnitInterval
from repro.domain.ipv4 import IPv4Domain

__all__ = [
    "register_domain",
    "make_domain",
    "available_domains",
    "infer_domain",
    "register_method",
    "make_method",
    "method_factory",
    "available_methods",
]


# --------------------------------------------------------------------------- #
# domains
# --------------------------------------------------------------------------- #
_DOMAIN_FACTORIES: dict[str, Callable[..., Domain]] = {}


def register_domain(name: str, factory: Callable[..., Domain]) -> None:
    """Register a domain factory taking the spec's string arguments.

    Registered domains plug into fitting and sampling everywhere; shard
    merging, checkpointing and release persistence additionally require an
    encoder/decoder in :mod:`repro.io.serialization` (built-in domains have
    one; custom domains without one fail with a clear ValueError there).

    Example:
        >>> from repro.domain.interval import UnitInterval
        >>> register_domain("my_interval", lambda: UnitInterval())
        >>> isinstance(make_domain("my_interval"), UnitInterval)
        True
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("domain name must be non-empty")
    _DOMAIN_FACTORIES[key] = factory


def available_domains() -> list[str]:
    """Sorted names of all registered domain factories.

    Example:
        >>> "interval" in available_domains() and "ipv4" in available_domains()
        True
    """
    return sorted(_DOMAIN_FACTORIES)


def infer_domain(data) -> Domain:
    """The historical shape-based default: ``[0,1]`` or ``[0,1]^d``.

    Example:
        >>> infer_domain([[0.1, 0.2], [0.3, 0.4]])
        Hypercube(dimension=2)
    """
    array = np.asarray(data)
    if array.ndim <= 1:
        return UnitInterval()
    return Hypercube(int(array.shape[1]))


def make_domain(spec: str | Domain, data=None) -> Domain:
    """Resolve a domain spec string (passing a Domain through unchanged).

    ``"auto"`` infers the domain from ``data``'s shape, preserving the old
    CLI behaviour as the default.

    Example:
        >>> make_domain("hypercube:3")
        Hypercube(dimension=3)
        >>> make_domain("discrete:4096").size
        4096
    """
    if isinstance(spec, Domain):
        return spec
    name, _, argument_text = str(spec).partition(":")
    key = name.strip().lower()
    if key == "auto":
        if data is None:
            raise ValueError("domain spec 'auto' needs data to infer the shape from")
        return infer_domain(data)
    if key not in _DOMAIN_FACTORIES:
        raise ValueError(
            f"unknown domain {name!r}; known domains: {', '.join(available_domains())}"
        )
    arguments = [part.strip() for part in argument_text.split(",") if part.strip()]
    try:
        return _DOMAIN_FACTORIES[key](*arguments)
    except TypeError as error:
        # Arity/type mistakes in the spec's ':args' are user input errors,
        # not programming errors; normalise them so CLI handling stays uniform.
        raise ValueError(f"bad arguments for domain {name!r}: {error}") from error


def _geo_factory(*arguments: str) -> GeoDomain:
    if not arguments:
        return GeoDomain()
    if len(arguments) != 4:
        raise ValueError("geo domain takes lat_min,lat_max,lon_min,lon_max")
    lat_min, lat_max, lon_min, lon_max = (float(value) for value in arguments)
    return GeoDomain(lat_min=lat_min, lat_max=lat_max, lon_min=lon_min, lon_max=lon_max)


def _hypercube_factory(*arguments: str) -> Hypercube:
    if len(arguments) > 1:
        raise ValueError("hypercube domain takes one dimension, e.g. hypercube:3")
    return Hypercube(int(arguments[0]) if arguments else 1)


def _discrete_factory(*arguments: str) -> DiscreteDomain:
    if len(arguments) != 1:
        raise ValueError("discrete domain takes a universe size, e.g. discrete:4096")
    return DiscreteDomain(int(arguments[0]))


register_domain("interval", lambda: UnitInterval())
register_domain("unit_interval", lambda: UnitInterval())
register_domain("hypercube", _hypercube_factory)
register_domain("ipv4", lambda: IPv4Domain())
register_domain("geo", _geo_factory)
register_domain("discrete", _discrete_factory)


# --------------------------------------------------------------------------- #
# methods
# --------------------------------------------------------------------------- #
_METHOD_FACTORIES: dict[str, Callable] = {}


def register_method(name: str, factory: Callable) -> None:
    """Register a synthetic-data-method factory under a name.

    Example:
        >>> register_method("my_method", object)
        >>> "my_method" in available_methods()
        True
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("method name must be non-empty")
    _METHOD_FACTORIES[key] = factory


def available_methods() -> list[str]:
    """Sorted names of all registered method factories.

    Example:
        >>> "privhp" in available_methods()
        True
    """
    _ensure_builtin_methods()
    return sorted(_METHOD_FACTORIES)


def method_factory(name: str) -> Callable:
    """The registered factory behind a method name.

    Lets callers inspect the factory's signature before instantiating -- the
    experiment-matrix runner uses this to pass ``epsilon``/``pruning_k`` only
    to methods that actually take them (the non-private floor takes neither).

    Example:
        >>> method_factory("privhp").__name__
        'PrivHPMethod'
    """
    _ensure_builtin_methods()
    key = str(name).strip().lower()
    if key not in _METHOD_FACTORIES:
        raise ValueError(
            f"unknown method {name!r}; known methods: {', '.join(available_methods())}"
        )
    return _METHOD_FACTORIES[key]


def make_method(name: str, *args, **kwargs):
    """Instantiate a registered method (arguments forwarded to the factory).

    Example:
        >>> from repro.domain.interval import UnitInterval
        >>> make_method("privhp", UnitInterval(), epsilon=1.0, pruning_k=4).name
        'PrivHP'
    """
    return method_factory(name)(*args, **kwargs)


_builtin_methods_registered = False


def _ensure_builtin_methods() -> None:
    # Imported lazily so repro.api does not pull in every baseline at import
    # time; registration happens once, on the first method lookup.
    global _builtin_methods_registered
    if _builtin_methods_registered:
        return

    from repro.baselines.base import PrivHPContinualMethod, PrivHPMethod
    from repro.baselines.nonprivate import NonPrivateHistogramMethod
    from repro.baselines.pmm import PMMMethod
    from repro.baselines.privtree import PrivTreeMethod
    from repro.baselines.quantile import QuantileMethod
    from repro.baselines.smooth import SmoothMethod
    from repro.baselines.srrw import SRRWMethod

    register_method("privhp", PrivHPMethod)
    register_method("privhp-continual", PrivHPContinualMethod)
    register_method("pmm", PMMMethod)
    register_method("privtree", PrivTreeMethod)
    register_method("quantile", QuantileMethod)
    register_method("smooth", SmoothMethod)
    register_method("srrw", SRRWMethod)
    register_method("nonprivate", NonPrivateHistogramMethod)
    # Flag set last so a failed import is retried on the next lookup instead
    # of leaving the registry permanently empty.
    _builtin_methods_registered = True
