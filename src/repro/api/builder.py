"""Fluent builder for PrivHP summarizers.

The builder owns the config -> fit plumbing every consumer used to
re-implement: resolve the paper's Corollary-1 defaults from
``(stream_size, epsilon, k)``, apply explicit overrides, pick the domain (by
object or registry spec), and construct either one noisy summarizer or a set
of raw shard summarizers that merge into a single release::

    release = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(8)
        .stream_size(100_000)
        .seed(7)
        .build()
        .update_batch(values)
        .release()
    )

    shards = builder.build_shards(4)          # raw (noise-free) shard summaries
    for shard, part in zip(shards, parts):
        shard.update_batch(part)              # ingest in parallel
    release = PrivHP.merge_all(shards).release()   # noise injected exactly once
"""

from __future__ import annotations

import numpy as np

from repro.api.registry import make_domain
from repro.core.config import PrivHPConfig
from repro.core.privhp import PrivHP
from repro.domain.base import Domain

__all__ = ["PrivHPBuilder"]


class PrivHPBuilder:
    """Fluent configuration of a PrivHP summarizer (domain + budget + defaults).

    Example:
        >>> import numpy as np
        >>> release = (
        ...     PrivHPBuilder("interval")
        ...     .epsilon(1.0)
        ...     .pruning_k(4)
        ...     .stream_size(256)
        ...     .seed(0)
        ...     .build()
        ...     .update_batch(np.linspace(0.0, 1.0, 256))
        ...     .release()
        ... )
        >>> release.items_processed
        256
        >>> 0.0 <= release.mass(0.0, 0.5) <= 1.0
        True
    """

    #: Defaults applied when the corresponding setter was never called.
    DEFAULT_EPSILON = 1.0
    DEFAULT_PRUNING_K = 8

    def __init__(self, domain: Domain | str | None = None) -> None:
        self._domain: Domain | None = make_domain(domain) if domain is not None else None
        self._epsilon: float | None = None
        self._pruning_k: int | None = None
        self._stream_size: int | None = None
        self._seed: int | None = None
        self._explicit_config: PrivHPConfig | None = None
        self._overrides: dict = {}
        self._continual = False
        self._horizon: int | None = None

    # ------------------------------------------------------------------ #
    # fluent setters (each returns self)
    # ------------------------------------------------------------------ #
    def domain(self, domain: Domain | str) -> "PrivHPBuilder":
        """Set the metric domain, by object or registry spec (e.g. ``"hypercube:3"``)."""
        self._domain = make_domain(domain)
        return self

    def epsilon(self, value: float) -> "PrivHPBuilder":
        """Set the total privacy budget."""
        self._epsilon = float(value)
        return self

    def pruning_k(self, value: int) -> "PrivHPBuilder":
        """Set the pruning parameter ``k`` (hot branches per level)."""
        self._pruning_k = int(value)
        return self

    def stream_size(self, value: int) -> "PrivHPBuilder":
        """Set the (expected) stream length the paper defaults derive from."""
        self._stream_size = int(value)
        return self

    def seed(self, value: int | None) -> "PrivHPBuilder":
        """Set the seed governing noise and hash functions."""
        self._seed = None if value is None else int(value)
        return self

    def config(self, config: PrivHPConfig) -> "PrivHPBuilder":
        """Use a fully resolved config, bypassing the paper defaults."""
        self._explicit_config = config
        return self

    def continual(self, horizon: int | None = None) -> "PrivHPBuilder":
        """Build continual-observation summarizers (private at every point).

        ``horizon`` bounds the stream length the binary-mechanism counters
        must survive; it defaults to ``stream_size``.  :meth:`build` then
        returns a :class:`repro.continual.privhp.PrivHPContinual`, whose
        ``snapshot()`` yields a full release at any point of the stream.

        Example:
            >>> import numpy as np
            >>> summarizer = (
            ...     PrivHPBuilder("interval")
            ...     .stream_size(256)
            ...     .seed(0)
            ...     .continual()
            ...     .build()
            ...     .update_batch(np.linspace(0.0, 1.0, 128))
            ... )
            >>> summarizer.snapshot().items_processed
            128
        """
        self._continual = True
        self._horizon = None if horizon is None else int(horizon)
        return self

    def override(self, **changes) -> "PrivHPBuilder":
        """Override derived parameters (``depth``, ``level_cutoff``,
        ``sketch_width``, ``sketch_depth``, ``budget_allocation``,
        ``apply_consistency``)."""
        self._overrides.update(changes)
        return self

    # ------------------------------------------------------------------ #
    # building
    # ------------------------------------------------------------------ #
    def build_config(self) -> PrivHPConfig:
        """Resolve the configuration the summarizers will share.

        An explicit ``.config(...)`` carries its own parameters, so combining
        it with disagreeing ``.epsilon()`` / ``.pruning_k()`` / ``.override()``
        calls is rejected rather than silently resolved in the config's
        favour (only ``.seed()`` is reconciled onto the config).
        """
        if self._explicit_config is not None:
            config = self._explicit_config
            if self._seed is not None and config.seed != self._seed:
                config = config.with_overrides(seed=self._seed)
            conflicts = []
            if self._stream_size is not None:
                # The config does not record the stream size it was derived
                # from, so the two can never be reconciled.
                conflicts.append(
                    f".stream_size({self._stream_size}) has no effect with an "
                    "explicit config (derive the config from that size instead)"
                )
            if self._epsilon is not None and self._epsilon != config.epsilon:
                conflicts.append(f".epsilon({self._epsilon}) vs config.epsilon={config.epsilon}")
            if self._pruning_k is not None and self._pruning_k != config.pruning_k:
                conflicts.append(
                    f".pruning_k({self._pruning_k}) vs config.pruning_k={config.pruning_k}"
                )
            for key, value in self._overrides.items():
                if not hasattr(config, key):
                    raise ValueError(f"unknown override {key!r}; not a PrivHPConfig field")
                if getattr(config, key) != value:
                    conflicts.append(f".override({key}={value}) vs config.{key}={getattr(config, key)}")
            if conflicts:
                raise ValueError(
                    "explicit .config(...) disagrees with builder settings "
                    f"({'; '.join(conflicts)}); set the values on the config instead"
                )
            return config
        if self._stream_size is None:
            raise ValueError(
                "stream_size is required to resolve the paper defaults; call "
                ".stream_size(n) or provide a full config via .config(...)"
            )
        return PrivHPConfig.from_stream_size(
            stream_size=self._stream_size,
            epsilon=self._epsilon if self._epsilon is not None else self.DEFAULT_EPSILON,
            pruning_k=self._pruning_k if self._pruning_k is not None else self.DEFAULT_PRUNING_K,
            seed=self._seed,
            **self._overrides,
        )

    def _require_domain(self) -> Domain:
        if self._domain is None:
            raise ValueError("a domain is required; call .domain(...) first")
        return self._domain

    def _resolve_horizon(self) -> int:
        horizon = self._horizon if self._horizon is not None else self._stream_size
        if horizon is None:
            raise ValueError(
                "a continual summarizer needs a horizon; call .continual(horizon=n) "
                "or .stream_size(n)"
            )
        return int(horizon)

    def build(self, rng: np.random.Generator | int | None = None):
        """A standard (noisy-at-initialisation) summarizer.

        With :meth:`continual` set, returns a
        :class:`~repro.continual.privhp.PrivHPContinual` instead of a
        :class:`~repro.core.privhp.PrivHP`; both satisfy
        :class:`~repro.api.summarizer.StreamSummarizer`.
        """
        if self._continual:
            from repro.continual.privhp import PrivHPContinual

            return PrivHPContinual(
                self._require_domain(),
                self.build_config(),
                horizon=self._resolve_horizon(),
                rng=rng,
            )
        return PrivHP(self._require_domain(), self.build_config(), rng=rng)

    def build_shard(self) -> PrivHP:
        """One raw shard summarizer (noise deferred to the merged release)."""
        if self._continual:
            raise ValueError(
                "continual summarizers have no raw shard mode (noise cannot be "
                "deferred under continual observation); use build_shards(), whose "
                "shards each carry independent noise and merge additively"
            )
        return PrivHP(self._require_domain(), self.build_config(), add_noise=False)

    def build_shards(self, count: int) -> list:
        """``count`` shard summarizers sharing one config and hash seeds.

        One-shot shards are *raw* (noise-free): ingest disjoint sub-streams
        into them (in parallel if desired), then combine with
        :meth:`repro.core.privhp.PrivHP.merge_all` and call ``release()`` on
        the result; the privacy budget is spent exactly once at that release.

        Continual shards (after :meth:`continual`) instead each carry their
        own noise from *independent* generators spawned off the builder seed
        (continual noise can never be deferred); merging with
        :meth:`repro.continual.privhp.PrivHPContinual.merge_all` sums state
        and noise, and each shard is already private on its own sub-stream.
        """
        if count < 1:
            raise ValueError(f"shard count must be at least 1, got {count}")
        config = self.build_config()
        domain = self._require_domain()
        if self._continual:
            from repro.continual.privhp import PrivHPContinual

            horizon = self._resolve_horizon()
            children = np.random.SeedSequence(config.seed).spawn(count)
            return [
                PrivHPContinual(
                    domain, config, horizon=horizon, rng=np.random.default_rng(child)
                )
                for child in children
            ]
        return [PrivHP(domain, config, add_noise=False) for _ in range(count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"PrivHPBuilder(domain={self._domain!r}, epsilon={self._epsilon}, "
            f"k={self._pruning_k}, stream_size={self._stream_size}, seed={self._seed})"
        )
