"""Sketching substrate: compact frequency summaries used by PrivHP.

PrivHP stores, for every hierarchy level below the exact-counter cut-off
``L*``, a *private* Count-Min sketch of the level's subdomain frequencies.
This package provides the non-private primitives (Count-Min, Count-Sketch and
the counter-based Misra-Gries summary used by the Biswas et al. baseline) and
the oblivious-noise private wrappers of Section 3.4.
"""

from repro.sketch.hashing import HashFamily, PairwiseHash, SignedHash
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch
from repro.sketch.misra_gries import MisraGries
from repro.sketch.private import (
    PrivateCountMinSketch,
    PrivateCountSketch,
    privatize_sketch_array,
)

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "HashFamily",
    "MisraGries",
    "PairwiseHash",
    "PrivateCountMinSketch",
    "PrivateCountSketch",
    "SignedHash",
    "privatize_sketch_array",
]
