"""Seeded hash families for sketching.

The paper's error analysis (Lemma 4) assumes fully random hash functions, but
its privacy guarantee does not.  In the implementation we use seeded
polynomial hashing over a Mersenne prime, which is the standard practical
substitute: it is deterministic given the seed (so sketches are reproducible
and mergeable) and behaves like a random function on the bit-string keys used
by the hierarchy.

Keys are arbitrary hashable Python objects; bit-tuples (the ``theta`` indices
of hierarchy cells) and integers are the common cases, and both are converted
to a canonical byte representation before hashing so that equal keys always
collide with themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MERSENNE_PRIME", "canonical_key", "PairwiseHash", "SignedHash", "HashFamily"]

# 2^61 - 1: large Mersenne prime that still fits comfortably in 64-bit ints.
MERSENNE_PRIME = (1 << 61) - 1


def canonical_key(key) -> int:
    """Map an arbitrary key to a non-negative integer deterministically.

    Bit tuples (the hierarchy's ``theta`` indices) are packed as
    ``1 b_0 b_1 ... b_{l-1}`` so that tuples of different lengths never
    collide by construction.  Integers map to themselves (offset to be
    non-negative), strings and bytes are hashed via a simple polynomial over
    their bytes.  The mapping must be stable across processes, so Python's
    built-in randomised ``hash`` is deliberately avoided.
    """
    if isinstance(key, (tuple, list)):
        value = 1
        for element in key:
            if isinstance(element, (int, np.integer)) and int(element) in (0, 1):
                value = ((value << 1) | int(element)) % MERSENNE_PRIME
            else:
                # General tuples: fold each element recursively.
                value = (value * 1_000_003 + canonical_key(element)) % MERSENNE_PRIME
        return value % MERSENNE_PRIME
    if isinstance(key, (int, np.integer)):
        return int(key) % MERSENNE_PRIME
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        value = 0
        for byte in key:
            value = (value * 257 + byte + 1) % MERSENNE_PRIME
        return value
    raise TypeError(f"unsupported sketch key type: {type(key)!r}")


@dataclass(frozen=True)
class PairwiseHash:
    """A single pairwise-independent hash ``h(x) = ((a x + b) mod p) mod width``."""

    a: int
    b: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"hash width must be positive, got {self.width}")
        if not (1 <= self.a < MERSENNE_PRIME):
            raise ValueError("hash coefficient a must be in [1, p)")
        if not (0 <= self.b < MERSENNE_PRIME):
            raise ValueError("hash coefficient b must be in [0, p)")

    def __call__(self, key) -> int:
        value = canonical_key(key)
        return int(((self.a * value + self.b) % MERSENNE_PRIME) % self.width)


@dataclass(frozen=True)
class SignedHash:
    """A +/-1 valued hash used by Count-Sketch."""

    a: int
    b: int

    def __call__(self, key) -> int:
        value = canonical_key(key)
        bit = ((self.a * value + self.b) % MERSENNE_PRIME) & 1
        return 1 if bit else -1


class HashFamily:
    """A reproducible family of ``depth`` row hashes (and optional sign hashes)."""

    def __init__(self, depth: int, width: int, seed: int | None = None) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.depth = depth
        self.width = width
        rng = np.random.default_rng(seed)
        self._row_hashes = [
            PairwiseHash(
                a=int(rng.integers(1, MERSENNE_PRIME)),
                b=int(rng.integers(0, MERSENNE_PRIME)),
                width=width,
            )
            for _ in range(depth)
        ]
        self._sign_hashes = [
            SignedHash(
                a=int(rng.integers(1, MERSENNE_PRIME)),
                b=int(rng.integers(0, MERSENNE_PRIME)),
            )
            for _ in range(depth)
        ]

    def bucket(self, row: int, key) -> int:
        """Bucket index of ``key`` in ``row``."""
        return self._row_hashes[row](key)

    def sign(self, row: int, key) -> int:
        """Sign (+1/-1) of ``key`` in ``row`` (used by Count-Sketch only)."""
        return self._sign_hashes[row](key)

    def buckets(self, key) -> list[int]:
        """Bucket indices of ``key`` for every row."""
        return [h(key) for h in self._row_hashes]
