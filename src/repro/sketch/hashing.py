"""Seeded hash families for sketching.

The paper's error analysis (Lemma 4) assumes fully random hash functions, but
its privacy guarantee does not.  In the implementation we use seeded
polynomial hashing over a Mersenne prime, which is the standard practical
substitute: it is deterministic given the seed (so sketches are reproducible
and mergeable) and behaves like a random function on the bit-string keys used
by the hierarchy.

Keys are arbitrary hashable Python objects; bit-tuples (the ``theta`` indices
of hierarchy cells) and integers are the common cases, and both are converted
to a canonical byte representation before hashing so that equal keys always
collide with themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MERSENNE_PRIME", "canonical_key", "PairwiseHash", "SignedHash", "HashFamily"]

# 2^61 - 1: large Mersenne prime that still fits comfortably in 64-bit ints.
MERSENNE_PRIME = (1 << 61) - 1


def canonical_key(key) -> int:
    """Map an arbitrary key to a non-negative integer deterministically.

    Bit tuples (the hierarchy's ``theta`` indices) are packed as
    ``1 b_0 b_1 ... b_{l-1}`` so that tuples of different lengths never
    collide by construction.  Integers map to themselves (offset to be
    non-negative), strings and bytes are hashed via a simple polynomial over
    their bytes.  The mapping must be stable across processes, so Python's
    built-in randomised ``hash`` is deliberately avoided.
    """
    if isinstance(key, (tuple, list)):
        value = 1
        for element in key:
            if isinstance(element, (int, np.integer)) and int(element) in (0, 1):
                value = ((value << 1) | int(element)) % MERSENNE_PRIME
            else:
                # General tuples: fold each element recursively.
                value = (value * 1_000_003 + canonical_key(element)) % MERSENNE_PRIME
        return value % MERSENNE_PRIME
    if isinstance(key, (int, np.integer)):
        return int(key) % MERSENNE_PRIME
    if isinstance(key, str):
        key = key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        value = 0
        for byte in key:
            value = (value * 257 + byte + 1) % MERSENNE_PRIME
        return value
    raise TypeError(f"unsupported sketch key type: {type(key)!r}")


_MASK61 = np.uint64(MERSENNE_PRIME)


def _mulmod_mersenne61(multiplier: int, keys: np.ndarray) -> np.ndarray:
    """``(multiplier * keys) mod (2^61 - 1)`` on uint64 arrays without overflow.

    The 64x64-bit products are assembled from 32-bit halves and the 128-bit
    result is folded with ``2^61 = 1 (mod p)``, so the arithmetic matches the
    arbitrary-precision Python-int computation bit for bit.
    """
    a = np.uint64(multiplier)
    a_hi, a_lo = a >> np.uint64(32), a & np.uint64(0xFFFFFFFF)
    k_hi, k_lo = keys >> np.uint64(32), keys & np.uint64(0xFFFFFFFF)
    # multiplier * keys = hh<<64 + (hl + lh)<<32 + ll, every partial < 2^62.
    hh = a_hi * k_hi
    mid = a_hi * k_lo + a_lo * k_hi
    ll = a_lo * k_lo
    # Fold mod p: 2^64 = 8, x<<32 = (x >> 29) + ((x << 32) & p), x = (x>>61) + (x & p).
    result = hh * np.uint64(8)
    result += (mid >> np.uint64(29)) + ((mid << np.uint64(32)) & _MASK61)
    result += (ll >> np.uint64(61)) + (ll & _MASK61)
    result = (result & _MASK61) + (result >> np.uint64(61))
    return _reduce61(result)


def _reduce61(values: np.ndarray) -> np.ndarray:
    """Final reduction of values ``< 2^62`` to ``[0, p)`` for ``p = 2^61 - 1``."""
    values = (values & _MASK61) + (values >> np.uint64(61))
    return np.where(values >= _MASK61, values - _MASK61, values)


@dataclass(frozen=True)
class PairwiseHash:
    """A single pairwise-independent hash ``h(x) = ((a x + b) mod p) mod width``."""

    a: int
    b: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"hash width must be positive, got {self.width}")
        if not (1 <= self.a < MERSENNE_PRIME):
            raise ValueError("hash coefficient a must be in [1, p)")
        if not (0 <= self.b < MERSENNE_PRIME):
            raise ValueError("hash coefficient b must be in [0, p)")

    def __call__(self, key) -> int:
        value = canonical_key(key)
        return int(((self.a * value + self.b) % MERSENNE_PRIME) % self.width)

    def buckets_batch(self, keys: np.ndarray) -> np.ndarray:
        """Bucket indices for an array of pre-canonicalised integer keys.

        ``keys`` must already be reduced mod p (true for any key below
        ``2^61 - 1``); the result equals ``[self(k) for k in keys]``.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        hashed = _reduce61(_mulmod_mersenne61(self.a, keys) + np.uint64(self.b))
        return (hashed % np.uint64(self.width)).astype(np.int64)


@dataclass(frozen=True)
class SignedHash:
    """A +/-1 valued hash used by Count-Sketch."""

    a: int
    b: int

    def __call__(self, key) -> int:
        value = canonical_key(key)
        bit = ((self.a * value + self.b) % MERSENNE_PRIME) & 1
        return 1 if bit else -1

    def signs_batch(self, keys: np.ndarray) -> np.ndarray:
        """``+/-1`` signs for an array of pre-canonicalised integer keys.

        ``keys`` must already be reduced mod p (true for any key below
        ``2^61 - 1``); the result equals ``[self(k) for k in keys]``.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        hashed = _reduce61(_mulmod_mersenne61(self.a, keys) + np.uint64(self.b))
        return np.where(hashed & np.uint64(1), 1.0, -1.0)


class HashFamily:
    """A reproducible family of ``depth`` row hashes (and optional sign hashes)."""

    def __init__(self, depth: int, width: int, seed: int | None = None) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.depth = depth
        self.width = width
        rng = np.random.default_rng(seed)
        self._row_hashes = [
            PairwiseHash(
                a=int(rng.integers(1, MERSENNE_PRIME)),
                b=int(rng.integers(0, MERSENNE_PRIME)),
                width=width,
            )
            for _ in range(depth)
        ]
        self._sign_hashes = [
            SignedHash(
                a=int(rng.integers(1, MERSENNE_PRIME)),
                b=int(rng.integers(0, MERSENNE_PRIME)),
            )
            for _ in range(depth)
        ]

    def bucket(self, row: int, key) -> int:
        """Bucket index of ``key`` in ``row``."""
        return self._row_hashes[row](key)

    def buckets_batch(self, row: int, keys: np.ndarray) -> np.ndarray:
        """Vectorised bucket indices for canonical integer keys in ``row``."""
        return self._row_hashes[row].buckets_batch(keys)

    def sign(self, row: int, key) -> int:
        """Sign (+1/-1) of ``key`` in ``row`` (used by Count-Sketch only)."""
        return self._sign_hashes[row](key)

    def signs_batch(self, row: int, keys: np.ndarray) -> np.ndarray:
        """Vectorised signs for canonical integer keys in ``row``."""
        return self._sign_hashes[row].signs_batch(keys)

    def buckets(self, key) -> list[int]:
        """Bucket indices of ``key`` for every row."""
        return [h(key) for h in self._row_hashes]
