"""Count-Min sketch (Cormode & Muthukrishnan) -- the paper's sketching primitive.

The sketch is a ``depth x width`` matrix of counters with one hash function
per row (Figure 1 of the paper).  Updates add the increment to one bucket per
row; queries take the minimum across rows, which upper-bounds the true count
when all updates are non-negative.  Lemma 4 bounds the expected error of a
width-``2w`` sketch by ``||tail_w(v)||_1 / w + 2^{-j+1} ||v||_1``, which is the
form that composes with the hierarchy pruning analysis.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import HashFamily

__all__ = ["CountMinSketch"]


class CountMinSketch:
    """A Count-Min sketch over arbitrary hashable keys.

    Parameters
    ----------
    width:
        Number of buckets per row.  The paper's analysis uses width ``2w``
        with ``w = k`` (the pruning parameter); callers pass the actual number
        of buckets.
    depth:
        Number of rows ``j``.  Larger depth drives the heavy-collision term
        ``2^{-j+1} ||v||_1`` towards zero.
    seed:
        Seed for the hash family; fixing it makes the sketch reproducible and
        allows two sketches built with the same seed to be merged.
    conservative:
        When True, uses conservative update (only raise the minimal buckets),
        an optional accuracy improvement that preserves the upper-bound
        property for non-negative streams.
    """

    def __init__(
        self,
        width: int,
        depth: int,
        seed: int | None = None,
        conservative: bool = False,
    ) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = seed
        self.conservative = bool(conservative)
        self._hashes = HashFamily(depth=self.depth, width=self.width, seed=seed)
        self._table = np.zeros((self.depth, self.width), dtype=float)
        self._total = 0.0
        self._updates = 0

    # ------------------------------------------------------------------ #
    # update / query
    # ------------------------------------------------------------------ #
    def update(self, key, count: float = 1.0) -> None:
        """Add ``count`` to ``key``'s bucket in every row."""
        if count < 0 and self.conservative:
            raise ValueError("conservative update requires non-negative counts")
        rows = range(self.depth)
        buckets = [self._hashes.bucket(row, key) for row in rows]
        if self.conservative:
            current = min(self._table[row, bucket] for row, bucket in zip(rows, buckets))
            target = current + count
            for row, bucket in zip(rows, buckets):
                if self._table[row, bucket] < target:
                    self._table[row, bucket] = target
        else:
            for row, bucket in zip(rows, buckets):
                self._table[row, bucket] += count
        self._total += count
        self._updates += 1

    def query(self, key) -> float:
        """Point estimate: minimum bucket value across rows."""
        return float(
            min(
                self._table[row, self._hashes.bucket(row, key)]
                for row in range(self.depth)
            )
        )

    def __contains__(self, key) -> bool:
        """Membership is not tracked exactly; a zero estimate means 'absent'."""
        return self.query(key) > 0

    # ------------------------------------------------------------------ #
    # bulk helpers
    # ------------------------------------------------------------------ #
    def update_many(self, keys, counts=None) -> None:
        """Update the sketch with an iterable of keys (optionally weighted)."""
        if counts is None:
            for key in keys:
                self.update(key)
        else:
            for key, count in zip(keys, counts):
                self.update(key, count)

    def update_batch(self, keys: np.ndarray, counts: np.ndarray) -> None:
        """Aggregated vectorised update: canonical integer keys with weights.

        ``keys`` must be canonical integer keys (see
        :func:`repro.sketch.hashing.canonical_key`) below ``2^61 - 1``; for a
        hierarchy cell at level ``l`` with in-level index ``c`` that is the
        packed value ``(1 << l) | c``, so the batch lands in exactly the same
        buckets as per-item tuple updates.  ``counts`` are aggregated
        multiplicities, and the ``updates`` counter advances by their sum so
        batched and per-item ingestion of the same stream leave identical
        sketch state.  Conservative sketches cannot batch aggregated counts
        (the clamp is order-dependent) and raise.
        """
        if self.conservative:
            raise ValueError("conservative update does not support aggregated batches")
        keys = np.asarray(keys, dtype=np.uint64)
        counts = np.asarray(counts, dtype=float)
        if keys.shape != counts.shape or keys.ndim != 1:
            raise ValueError("keys and counts must be 1-d arrays of equal length")
        for row in range(self.depth):
            buckets = self._hashes.buckets_batch(row, keys)
            np.add.at(self._table[row], buckets, counts)
        self._total += float(counts.sum())
        self._updates += int(round(float(counts.sum())))

    def query_many(self, keys) -> np.ndarray:
        """Vector of point estimates for an iterable of keys."""
        return np.array([self.query(key) for key in keys], dtype=float)

    # ------------------------------------------------------------------ #
    # state / composition
    # ------------------------------------------------------------------ #
    @property
    def table(self) -> np.ndarray:
        """A copy of the counter matrix (rows x buckets)."""
        return self._table.copy()

    @property
    def total(self) -> float:
        """Total mass added to the sketch."""
        return self._total

    @property
    def updates(self) -> int:
        """Number of update operations performed."""
        return self._updates

    def add_noise_matrix(self, noise: np.ndarray) -> None:
        """Add a pre-sampled noise matrix to the counters (oblivious release)."""
        noise = np.asarray(noise, dtype=float)
        if noise.shape != self._table.shape:
            raise ValueError(
                f"noise shape {noise.shape} does not match sketch shape {self._table.shape}"
            )
        self._table += noise

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Merge another sketch built with identical parameters and seed."""
        if not isinstance(other, CountMinSketch):
            raise TypeError("can only merge with another CountMinSketch")
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("sketches must share width, depth and seed to merge")
        merged = CountMinSketch(self.width, self.depth, seed=self.seed, conservative=False)
        merged._table = self._table + other._table
        merged._total = self._total + other._total
        merged._updates = self._updates + other._updates
        return merged

    def load_state(self, table: np.ndarray, total: float, updates: int) -> None:
        """Overwrite the counter state (checkpoint restore); hashes stay seeded."""
        table = np.asarray(table, dtype=float)
        if table.shape != self._table.shape:
            raise ValueError(
                f"table shape {table.shape} does not match sketch shape {self._table.shape}"
            )
        self._table = table.copy()
        self._total = float(total)
        self._updates = int(updates)

    def memory_words(self) -> int:
        """Number of machine words occupied by the counter table."""
        return int(self._table.size)

    def error_bound(self, tail_norm: float, total_norm: float) -> float:
        """Expected error bound of Lemma 4 for a width-``2w`` sketch.

        ``width`` here is the actual number of buckets, so the Lemma's ``w``
        equals ``width / 2``.
        """
        half_width = max(self.width / 2.0, 1.0)
        return tail_norm / half_width + 2.0 ** (-(self.depth) + 1) * total_norm

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"total={self._total:.1f}, updates={self._updates})"
        )
