"""Misra-Gries heavy-hitter summary.

This is the counter-based sketch used by the Biswas et al. hierarchical
heavy-hitter baseline that the paper compares against in related work: its
error is ``n / (capacity + 1)`` regardless of skew, whereas the hash-based
sketches used by PrivHP have error governed by the tail norm.  Implementing it
lets the sketch-ablation benchmark demonstrate the paper's claim that the
hash-based sketch "composes nicely with hierarchy pruning" while the
counter-based one does not.
"""

from __future__ import annotations

__all__ = ["MisraGries"]


class MisraGries:
    """Classic Misra-Gries summary with a fixed number of counters."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._counters: dict = {}
        self._total = 0.0

    def update(self, key, count: float = 1.0) -> None:
        """Process one stream item (optionally weighted)."""
        if count < 0:
            raise ValueError("Misra-Gries only supports non-negative updates")
        self._total += count
        if key in self._counters:
            self._counters[key] += count
            return
        if len(self._counters) < self.capacity:
            self._counters[key] = count
            return
        # Decrement phase: reduce every counter by the incoming weight and
        # drop the ones that reach zero.
        decrement = min(count, min(self._counters.values()))
        remaining = count - decrement
        for existing in list(self._counters):
            self._counters[existing] -= decrement
            if self._counters[existing] <= 0:
                del self._counters[existing]
        if remaining > 0 and len(self._counters) < self.capacity:
            self._counters[key] = remaining

    def update_many(self, keys, counts=None) -> None:
        """Update with an iterable of keys (optionally weighted)."""
        if counts is None:
            for key in keys:
                self.update(key)
        else:
            for key, count in zip(keys, counts):
                self.update(key, count)

    def query(self, key) -> float:
        """Lower-bound estimate of ``key``'s frequency."""
        return float(self._counters.get(key, 0.0))

    def heavy_hitters(self, threshold: float) -> dict:
        """Keys whose estimated count is at least ``threshold``."""
        return {key: count for key, count in self._counters.items() if count >= threshold}

    @property
    def counters(self) -> dict:
        """A copy of the current counter map."""
        return dict(self._counters)

    @property
    def total(self) -> float:
        """Total mass processed."""
        return self._total

    def error_bound(self) -> float:
        """Worst-case underestimation: ``total / (capacity + 1)``."""
        return self._total / (self.capacity + 1)

    def memory_words(self) -> int:
        """Words used: two per stored counter (key reference + value)."""
        return 2 * len(self._counters)
