"""Private (oblivious-noise) sketch release, Section 3.4 of the paper.

Sketches are linear maps, so on neighbouring inputs a sketch differs by the
sketch of a single unit vector: one bucket per row changes by one, giving L1
sensitivity equal to the number of rows ``j``.  Adding
``Laplace(j / epsilon)`` noise independently to every cell therefore yields an
epsilon-differentially private release of the whole table, and every query
answered from the noisy table is private by post-processing.

PrivHP adds the noise *at initialisation* (Algorithm 1, line 8), which is
equivalent to adding it at release time because addition commutes; doing it up
front keeps GrowPartition purely deterministic post-processing.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.mechanisms import laplace_noise
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch

__all__ = ["privatize_sketch_array", "PrivateCountMinSketch", "PrivateCountSketch"]


def privatize_sketch_array(
    table: np.ndarray,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Return ``table + Laplace(depth/epsilon)`` noise, the oblivious release.

    ``table`` must be the raw ``depth x width`` counter matrix; the number of
    rows determines the sensitivity.
    """
    table = np.asarray(table, dtype=float)
    if table.ndim != 2:
        raise ValueError(f"sketch table must be 2-dimensional, got shape {table.shape}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    depth = table.shape[0]
    scale = depth / epsilon
    noise = laplace_noise(scale, size=table.shape, rng=rng)
    return table + noise


class _PrivateSketchMixin:
    """Shared wiring for private sketch wrappers."""

    def __init__(self, sketch, epsilon: float, rng: np.random.Generator | int | None) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._sketch = sketch
        self.epsilon = float(epsilon)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._noise_applied = False
        self._apply_initial_noise()

    def _apply_initial_noise(self) -> None:
        scale = self._sketch.depth / self.epsilon
        noise = self._rng.laplace(0.0, scale, size=(self._sketch.depth, self._sketch.width))
        self._sketch.add_noise_matrix(noise)
        self._noise_applied = True

    # Delegate the sketch interface -------------------------------------------------
    def update(self, key, count: float = 1.0) -> None:
        """Add an item to the underlying sketch (stream-side, pre-release)."""
        self._sketch.update(key, count)

    def update_many(self, keys, counts=None) -> None:
        """Bulk update of the underlying sketch."""
        self._sketch.update_many(keys, counts)

    def query(self, key) -> float:
        """Noisy frequency estimate (private by post-processing)."""
        return self._sketch.query(key)

    def query_many(self, keys) -> np.ndarray:
        """Vector of noisy frequency estimates."""
        return self._sketch.query_many(keys)

    @property
    def width(self) -> int:
        """Buckets per row of the wrapped sketch."""
        return self._sketch.width

    @property
    def depth(self) -> int:
        """Rows of the wrapped sketch (equals the L1 sensitivity)."""
        return self._sketch.depth

    @property
    def noise_applied(self) -> bool:
        """True once the oblivious noise matrix has been added."""
        return self._noise_applied

    @property
    def sensitivity(self) -> float:
        """L1 sensitivity of the sketch table on neighbouring streams."""
        return float(self._sketch.depth)

    @property
    def noise_scale(self) -> float:
        """Scale of the per-cell Laplace noise, ``depth / epsilon``."""
        return self._sketch.depth / self.epsilon

    def memory_words(self) -> int:
        """Words used by the sketch table."""
        return self._sketch.memory_words()

    @property
    def table(self) -> np.ndarray:
        """Copy of the (noisy) counter matrix."""
        return self._sketch.table


class PrivateCountMinSketch(_PrivateSketchMixin):
    """Count-Min sketch with oblivious Laplace noise (the paper's choice)."""

    def __init__(
        self,
        width: int,
        depth: int,
        epsilon: float,
        seed: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        sketch = CountMinSketch(width=width, depth=depth, seed=seed, conservative=False)
        super().__init__(sketch, epsilon, rng)

    def error_bound(self, tail_norm: float, total_norm: float) -> float:
        """Lemma 4 error plus the expected noise magnitude at the minimum."""
        sketch_error = self._sketch.error_bound(tail_norm, total_norm)
        noise_error = self.noise_scale
        return sketch_error + noise_error


class PrivateCountSketch(_PrivateSketchMixin):
    """Count-Sketch with oblivious Laplace noise (alternative primitive)."""

    def __init__(
        self,
        width: int,
        depth: int,
        epsilon: float,
        seed: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        sketch = CountSketch(width=width, depth=depth, seed=seed)
        super().__init__(sketch, epsilon, rng)
