"""Private (oblivious-noise) sketch release, Section 3.4 of the paper.

Sketches are linear maps, so on neighbouring inputs a sketch differs by the
sketch of a single unit vector: one bucket per row changes by one, giving L1
sensitivity equal to the number of rows ``j``.  Adding
``Laplace(j / epsilon)`` noise independently to every cell therefore yields an
epsilon-differentially private release of the whole table, and every query
answered from the noisy table is private by post-processing.

PrivHP adds the noise *at initialisation* (Algorithm 1, line 8), which is
equivalent to adding it at release time because addition commutes; doing it up
front keeps GrowPartition purely deterministic post-processing.
"""

from __future__ import annotations

import numpy as np

from repro.privacy.mechanisms import laplace_noise
from repro.sketch.countmin import CountMinSketch
from repro.sketch.countsketch import CountSketch

__all__ = ["privatize_sketch_array", "PrivateCountMinSketch", "PrivateCountSketch"]


def privatize_sketch_array(
    table: np.ndarray,
    epsilon: float,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Return ``table + Laplace(depth/epsilon)`` noise, the oblivious release.

    ``table`` must be the raw ``depth x width`` counter matrix; the number of
    rows determines the sensitivity.
    """
    table = np.asarray(table, dtype=float)
    if table.ndim != 2:
        raise ValueError(f"sketch table must be 2-dimensional, got shape {table.shape}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    depth = table.shape[0]
    scale = depth / epsilon
    noise = laplace_noise(scale, size=table.shape, rng=rng)
    return table + noise


class _PrivateSketchMixin:
    """Shared wiring for private sketch wrappers.

    With ``apply_noise=False`` the wrapper starts from a *raw* (non-private)
    table -- the shard mode of the batched ingestion API.  Raw shards can be
    :meth:`merge`-d linearly and the single oblivious noise matrix is added
    later via :meth:`apply_noise_now`, which keeps the privacy accounting at
    exactly one noise injection per released table.
    """

    def __init__(
        self,
        sketch,
        epsilon: float,
        rng: np.random.Generator | int | None,
        apply_noise: bool = True,
    ) -> None:
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self._sketch = sketch
        self.epsilon = float(epsilon)
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._noise_applied = False
        if apply_noise:
            self.apply_noise_now()

    def apply_noise_now(self, rng: np.random.Generator | None = None) -> None:
        """Draw and add the ``Laplace(depth/epsilon)`` matrix (exactly once)."""
        if self._noise_applied:
            raise RuntimeError("oblivious noise has already been applied to this sketch")
        generator = rng if rng is not None else self._rng
        scale = self._sketch.depth / self.epsilon
        noise = generator.laplace(0.0, scale, size=(self._sketch.depth, self._sketch.width))
        self._sketch.add_noise_matrix(noise)
        self._noise_applied = True

    # Delegate the sketch interface -------------------------------------------------
    def update(self, key, count: float = 1.0) -> None:
        """Add an item to the underlying sketch (stream-side, pre-release)."""
        self._sketch.update(key, count)

    def update_many(self, keys, counts=None) -> None:
        """Bulk update of the underlying sketch."""
        self._sketch.update_many(keys, counts)

    def update_batch(self, keys, counts) -> None:
        """Aggregated vectorised update (see :meth:`CountMinSketch.update_batch`)."""
        self._sketch.update_batch(keys, counts)

    def query(self, key) -> float:
        """Noisy frequency estimate (private by post-processing)."""
        return self._sketch.query(key)

    def query_many(self, keys) -> np.ndarray:
        """Vector of noisy frequency estimates."""
        return self._sketch.query_many(keys)

    @property
    def width(self) -> int:
        """Buckets per row of the wrapped sketch."""
        return self._sketch.width

    @property
    def depth(self) -> int:
        """Rows of the wrapped sketch (equals the L1 sensitivity)."""
        return self._sketch.depth

    @property
    def noise_applied(self) -> bool:
        """True once the oblivious noise matrix has been added."""
        return self._noise_applied

    @property
    def seed(self):
        """Hash-family seed of the wrapped sketch."""
        return self._sketch.seed

    @property
    def total(self) -> float:
        """Total mass added to the wrapped sketch (noise excluded)."""
        return self._sketch.total

    @property
    def updates(self) -> int:
        """Number of update operations recorded by the wrapped sketch."""
        return self._sketch.updates

    @property
    def sensitivity(self) -> float:
        """L1 sensitivity of the sketch table on neighbouring streams."""
        return float(self._sketch.depth)

    @property
    def noise_scale(self) -> float:
        """Scale of the per-cell Laplace noise, ``depth / epsilon``."""
        return self._sketch.depth / self.epsilon

    def memory_words(self) -> int:
        """Words used by the sketch table."""
        return self._sketch.memory_words()

    @property
    def table(self) -> np.ndarray:
        """Copy of the (noisy) counter matrix."""
        return self._sketch.table


class PrivateCountMinSketch(_PrivateSketchMixin):
    """Count-Min sketch with oblivious Laplace noise (the paper's choice)."""

    def __init__(
        self,
        width: int,
        depth: int,
        epsilon: float,
        seed: int | None = None,
        rng: np.random.Generator | int | None = None,
        apply_noise: bool = True,
    ) -> None:
        sketch = CountMinSketch(width=width, depth=depth, seed=seed, conservative=False)
        super().__init__(sketch, epsilon, rng, apply_noise=apply_noise)

    def error_bound(self, tail_norm: float, total_norm: float) -> float:
        """Lemma 4 error plus the expected noise magnitude at the minimum."""
        sketch_error = self._sketch.error_bound(tail_norm, total_norm)
        noise_error = self.noise_scale
        return sketch_error + noise_error

    def merge(self, other: "PrivateCountMinSketch") -> "PrivateCountMinSketch":
        """Linear merge of two shard sketches built with identical parameters.

        At most one operand may already carry its oblivious noise -- merging
        two noisy tables would double the injected noise while the privacy
        ledger only accounts for one release.
        """
        if not isinstance(other, PrivateCountMinSketch):
            raise TypeError("can only merge with another PrivateCountMinSketch")
        if (self.width, self.depth, self.seed, self.epsilon) != (
            other.width,
            other.depth,
            other.seed,
            other.epsilon,
        ):
            raise ValueError("sketches must share width, depth, seed and epsilon to merge")
        if self._noise_applied and other._noise_applied:
            raise ValueError("cannot merge two sketches that both carry oblivious noise")
        merged = PrivateCountMinSketch(
            width=self.width,
            depth=self.depth,
            epsilon=self.epsilon,
            seed=self.seed,
            rng=self._rng,
            apply_noise=False,
        )
        merged._sketch.load_state(
            self._sketch.table + other._sketch.table,
            total=self.total + other.total,
            updates=self.updates + other.updates,
        )
        merged._noise_applied = self._noise_applied or other._noise_applied
        return merged

    def load_state(self, table: np.ndarray, total: float, updates: int, noise_applied: bool) -> None:
        """Overwrite the table state (checkpoint restore)."""
        self._sketch.load_state(table, total=total, updates=updates)
        self._noise_applied = bool(noise_applied)


class PrivateCountSketch(_PrivateSketchMixin):
    """Count-Sketch with oblivious Laplace noise (alternative primitive)."""

    def __init__(
        self,
        width: int,
        depth: int,
        epsilon: float,
        seed: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        sketch = CountSketch(width=width, depth=depth, seed=seed)
        super().__init__(sketch, epsilon, rng)
