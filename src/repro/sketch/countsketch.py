"""Count-Sketch: the signed-hash sketch referenced alongside Count-Min.

The paper's related-work comparison relies on hashing-based private sketches
(Pagh & Thorup; Zhao et al.) of which Count-Sketch is the canonical unbiased
member.  PrivHP's concrete results use Count-Min, but Count-Sketch is provided
as a drop-in alternative so the sketch-ablation benchmark can compare the two
in the hierarchy.
"""

from __future__ import annotations

import numpy as np

from repro.sketch.hashing import HashFamily

__all__ = ["CountSketch"]


class CountSketch:
    """Count-Sketch with median-of-rows estimation.

    Unlike Count-Min, estimates are unbiased but may be negative; callers that
    need non-negative frequencies (such as the partition grower) clamp at
    query time.
    """

    def __init__(self, width: int, depth: int, seed: int | None = None) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = seed
        self._hashes = HashFamily(depth=self.depth, width=self.width, seed=seed)
        self._table = np.zeros((self.depth, self.width), dtype=float)
        self._total = 0.0
        self._updates = 0

    def update(self, key, count: float = 1.0) -> None:
        """Add ``sign(key) * count`` to one bucket per row."""
        for row in range(self.depth):
            bucket = self._hashes.bucket(row, key)
            sign = self._hashes.sign(row, key)
            self._table[row, bucket] += sign * count
        self._total += count
        self._updates += 1

    def query(self, key) -> float:
        """Median of the signed row estimates."""
        estimates = [
            self._hashes.sign(row, key) * self._table[row, self._hashes.bucket(row, key)]
            for row in range(self.depth)
        ]
        return float(np.median(estimates))

    def update_many(self, keys, counts=None) -> None:
        """Update with an iterable of keys (optionally weighted)."""
        if counts is None:
            for key in keys:
                self.update(key)
        else:
            for key, count in zip(keys, counts):
                self.update(key, count)

    def update_batch(self, keys: np.ndarray, counts: np.ndarray) -> None:
        """Aggregated vectorised update: canonical integer keys with weights.

        ``keys`` must be canonical integer keys (see
        :func:`repro.sketch.hashing.canonical_key`) below ``2^61 - 1``; each
        row receives ``sign(key) * count``, landing in exactly the same
        buckets with the same signs as per-item updates.  ``counts`` are
        aggregated multiplicities, and the ``updates`` counter advances by
        their sum so batched and per-item ingestion of the same stream leave
        identical sketch state.
        """
        keys = np.asarray(keys, dtype=np.uint64)
        counts = np.asarray(counts, dtype=float)
        if keys.shape != counts.shape or keys.ndim != 1:
            raise ValueError("keys and counts must be 1-d arrays of equal length")
        for row in range(self.depth):
            buckets = self._hashes.buckets_batch(row, keys)
            signs = self._hashes.signs_batch(row, keys)
            np.add.at(self._table[row], buckets, signs * counts)
        self._total += float(counts.sum())
        self._updates += int(round(float(counts.sum())))

    def query_many(self, keys) -> np.ndarray:
        """Vector of point estimates for an iterable of keys."""
        return np.array([self.query(key) for key in keys], dtype=float)

    @property
    def table(self) -> np.ndarray:
        """A copy of the counter matrix."""
        return self._table.copy()

    @property
    def total(self) -> float:
        """Total (absolute) mass added."""
        return self._total

    @property
    def updates(self) -> int:
        """Number of update operations performed."""
        return self._updates

    def add_noise_matrix(self, noise: np.ndarray) -> None:
        """Add a pre-sampled noise matrix (oblivious private release)."""
        noise = np.asarray(noise, dtype=float)
        if noise.shape != self._table.shape:
            raise ValueError(
                f"noise shape {noise.shape} does not match sketch shape {self._table.shape}"
            )
        self._table += noise

    def memory_words(self) -> int:
        """Number of machine words occupied by the counter table."""
        return int(self._table.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"CountSketch(width={self.width}, depth={self.depth}, "
            f"total={self._total:.1f}, updates={self._updates})"
        )
