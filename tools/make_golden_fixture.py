"""Regenerate the committed golden binary fixture (tests/data/golden_release_v1.bin).

The fixture is a frozen version-1 binary envelope of a deterministic interval
release.  ``tests/test_binary_io.py::TestGoldenFixture`` loads it and asserts
its query answers, so a future schema change that can no longer read v1
envelopes (or reads them differently) fails CI instead of silently breaking
every checkpoint already on disk.

Only rerun this when introducing a NEW envelope version -- and then commit a
new ``golden_release_v<N>.bin`` next to the old one rather than replacing it;
the whole point of the fixture is that old bytes stay readable.

Usage::

    PYTHONPATH=src python tools/make_golden_fixture.py
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.api.builder import PrivHPBuilder
from repro.io.binary import save_binary


def build_release():
    """The deterministic release frozen into the fixture."""
    rng = np.random.default_rng(42)
    data = rng.beta(2.0, 5.0, 512)
    summarizer = (
        PrivHPBuilder("interval")
        .epsilon(1.0)
        .pruning_k(4)
        .stream_size(len(data))
        .seed(3)
        .build()
    )
    summarizer.update_batch(data)
    return summarizer.release()


def main() -> None:
    release = build_release()
    path = pathlib.Path(__file__).resolve().parent.parent / "tests" / "data" / "golden_release_v1.bin"
    path.parent.mkdir(parents=True, exist_ok=True)
    save_binary(release.to_dict(), path, verify=True)
    print(f"wrote {path} ({path.stat().st_size} bytes)")
    print("expected answers for the test:")
    print(f"  items_processed = {release.items_processed}")
    print(f"  epsilon         = {release.epsilon!r}")
    print(f"  mass(0.1, 0.5)  = {release.mass(0.1, 0.5)!r}")
    print(f"  cdf(0.25)       = {release.cdf(0.25)!r}")
    print(f"  quantile(0.5)   = {release.quantile(0.5)!r}")
    print(f"  quantiles       = {release.quantiles([0.1, 0.9]).tolist()!r}")
    print(f"  range_count     = {release.range_count(0.0, 0.3)!r}")


if __name__ == "__main__":
    main()
