#!/usr/bin/env python
"""Fail on broken intra-repo links in Markdown files.

Scans ``[text](target)`` links in the given files/directories and checks
that every *relative* target resolves to a file in the repository, and that
``#fragment`` anchors (in-page or cross-file) match a heading in the target
document using GitHub's slug rules.  External links (``http://``,
``https://``, ``mailto:``) are not fetched -- CI must not depend on the
network -- and are skipped.

Used by the CI docs job::

    python tools/check_links.py README.md docs

Exit status 0 when every link resolves, 1 otherwise (broken links listed on
stderr).  Importable: ``tests/test_docs.py`` runs :func:`check_paths` so the
tier-1 suite catches broken links locally too.
"""

from __future__ import annotations

import pathlib
import re
import sys

__all__ = ["check_file", "check_paths", "extract_links", "heading_slugs", "main"]

#: ``[text](target)`` with no nested brackets; images share the syntax.
_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def _strip_code_blocks(text: str) -> str:
    """Drop fenced code blocks and inline code spans (links there are
    examples, not navigation)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def extract_links(text: str) -> list[str]:
    """Every Markdown link target in ``text``, code blocks excluded."""
    return _LINK_PATTERN.findall(_strip_code_blocks(text))


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation dropped,
    spaces to hyphens (backticks contribute their content)."""
    heading = heading.strip().lower().replace("`", "")
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def heading_slugs(text: str) -> set[str]:
    """The anchor slugs of every heading in a Markdown document."""
    return {github_slug(match) for match in _HEADING_PATTERN.findall(text)}


def check_file(path: pathlib.Path) -> list[str]:
    """Broken-link messages for one Markdown file (empty when clean)."""
    text = path.read_text()
    errors = []
    for target in extract_links(text):
        if target.startswith(_EXTERNAL_PREFIXES):
            continue
        raw_path, _, fragment = target.partition("#")
        if raw_path:
            resolved = (path.parent / raw_path).resolve()
            if not resolved.exists():
                errors.append(f"{path}: broken link target {target!r} ({resolved} missing)")
                continue
            if fragment and resolved.suffix.lower() in (".md", ".markdown"):
                if github_slug(fragment) not in heading_slugs(resolved.read_text()):
                    errors.append(f"{path}: anchor {target!r} matches no heading in {resolved}")
        elif fragment:
            if github_slug(fragment) not in heading_slugs(text):
                errors.append(f"{path}: in-page anchor {target!r} matches no heading")
    return errors


def check_paths(paths) -> list[str]:
    """Broken-link messages across files and (recursively) directories."""
    errors = []
    seen_any = False
    for entry in paths:
        entry = pathlib.Path(entry)
        if entry.is_dir():
            files = sorted(entry.rglob("*.md"))
        elif entry.exists():
            files = [entry]
        else:
            errors.append(f"{entry}: no such file or directory")
            continue
        for markdown_file in files:
            seen_any = True
            errors.extend(check_file(markdown_file))
    if not seen_any:
        errors.append("no Markdown files found to check")
    return errors


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    if not arguments:
        print("usage: check_links.py FILE_OR_DIR [FILE_OR_DIR ...]", file=sys.stderr)
        return 2
    errors = check_paths(arguments)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print("all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
