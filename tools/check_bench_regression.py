#!/usr/bin/env python
"""Compare two BENCH_performance.json files and fail on throughput regressions.

CI's bench job re-runs every benchmark family and writes a fresh
``BENCH_performance.json``; this tool diffs the fresh file against the
committed one, key by key, over every throughput metric (any numeric leaf
whose name ends in ``_per_second``).  A fresh value more than
``--max-regression`` (default 30%) below the committed value fails the check;
new keys, removed keys and improvements are reported but never fail.

Usage::

    python tools/check_bench_regression.py committed.json fresh.json
    python tools/check_bench_regression.py committed.json fresh.json \
        --max-regression 0.5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

#: Fail when a fresh throughput drops more than this fraction below committed.
DEFAULT_MAX_REGRESSION = 0.30


def collect_throughputs(document, prefix: str = "") -> dict:
    """Flatten nested dicts to ``{dotted.path: value}`` for *_per_second leaves."""
    found = {}
    if isinstance(document, dict):
        for key in sorted(document):
            path = f"{prefix}.{key}" if prefix else str(key)
            value = document[key]
            if (
                str(key).endswith("_per_second")
                and isinstance(value, (int, float))
                and not isinstance(value, bool)
            ):
                found[path] = float(value)
            else:
                found.update(collect_throughputs(value, path))
    return found


def compare(
    committed: dict, fresh: dict, max_regression: float = DEFAULT_MAX_REGRESSION
) -> tuple[list[dict], list[str]]:
    """Diff throughput keys; returns (per-key comparison rows, failures)."""
    committed_keys = collect_throughputs(committed)
    fresh_keys = collect_throughputs(fresh)
    rows = []
    failures = []
    for key in sorted(set(committed_keys) | set(fresh_keys)):
        old = committed_keys.get(key)
        new = fresh_keys.get(key)
        if old is None:
            rows.append({"key": key, "old": None, "new": new, "status": "new"})
            continue
        if new is None:
            rows.append({"key": key, "old": old, "new": None, "status": "missing"})
            continue
        change = (new - old) / old if old else 0.0
        if old and new < old * (1.0 - max_regression):
            status = "REGRESSION"
            failures.append(
                f"{key}: {new:,.0f}/s is {-change:.0%} below committed "
                f"{old:,.0f}/s (limit {max_regression:.0%})"
            )
        else:
            status = "ok"
        rows.append({"key": key, "old": old, "new": new,
                     "change": change, "status": status})
    return rows, failures


def format_rows(rows: list[dict]) -> str:
    """Render the per-key comparison table."""
    lines = [f"{'key':<60} {'committed':>14} {'fresh':>14} {'change':>8}  status"]
    for row in rows:
        old = f"{row['old']:,.0f}" if row["old"] is not None else "-"
        new = f"{row['new']:,.0f}" if row["new"] is not None else "-"
        change = f"{row['change']:+.0%}" if "change" in row else "-"
        lines.append(f"{row['key']:<60} {old:>14} {new:>14} {change:>8}  {row['status']}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="committed BENCH_performance.json (baseline)")
    parser.add_argument("fresh", help="freshly produced BENCH_performance.json")
    parser.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        help="maximum tolerated fractional throughput drop "
        f"(default {DEFAULT_MAX_REGRESSION:.0%})",
    )
    args = parser.parse_args(argv)
    if not 0 < args.max_regression < 1:
        parser.error(f"--max-regression must be in (0, 1), got {args.max_regression}")

    documents = []
    for path in (args.committed, args.fresh):
        try:
            documents.append(json.loads(pathlib.Path(path).read_text()))
        except (OSError, json.JSONDecodeError) as error:
            parser.error(f"cannot load {path}: {error}")
    rows, failures = compare(
        documents[0], documents[1], max_regression=args.max_regression
    )
    if not rows:
        print("no *_per_second throughput keys found in either file", file=sys.stderr)
        return 1
    print(format_rows(rows))
    if failures:
        print(f"\n{len(failures)} throughput regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(rows)} throughput key(s) within the regression limit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
